"""Repeatable performance harness for the simulator hot path.

Times the simulate-execute loop on fixed workload/strategy/machine
matrices and emits a machine-readable ``BENCH_perf.json``.  Two things
matter and the harness reports both:

* **speed** — wall seconds per case, simulated cycles per wall second,
  retired instructions per wall second, PMU samples per wall second;
* **fidelity** — the sha256 digest of the workload's output arrays and
  the full memory-event counter snapshot per case.  The simulator is
  deterministic, so these must be byte-identical between two builds of
  the simulator; a hot-path "optimization" that changes them is a
  semantics change, not a speedup.

Cross-PR comparison: run ``repro bench --quick --out before.json`` on
the old tree and the same command on the new tree, then compare
``wall_s`` (speed) and ``digest``/``events`` (fidelity) per case id.

Scale note: wall time is host-dependent; cycles/sec and digests are the
portable parts of the report.
"""

from __future__ import annotations

import platform
import sys
import time
from dataclasses import replace
from typing import Iterable

from .config import ProfileDBConfig, itanium2_smp, sgi_altix
from .cpu import Machine
from .core import run_with_cobra
from .validate.differential import _digest, _snapshot_arrays
from .workloads import BENCHMARKS, build_daxpy

__all__ = [
    "BENCH_SCHEMA",
    "BENCH_MACHINES",
    "BENCH_STRATEGIES",
    "QUICK_BENCHMARKS",
    "FULL_BENCHMARKS",
    "REGRESSION_THRESHOLD",
    "run_case",
    "run_bench",
    "run_warm_case",
    "run_fleet_case",
    "format_report",
    "compare_reports",
]

#: Schema tag written into BENCH_perf.json (bump on layout changes).
#: /2 added the per-case ``fastpath`` block (trace-compile counters);
#: /3 added the OSR/trace-tree counters to it (osr_entries, tree_links,
#: resume_hits, promotions, exit_sites).
BENCH_SCHEMA = "repro-bench-perf/3"

#: ``--compare`` fails on wall-clock regressions beyond this fraction.
REGRESSION_THRESHOLD = 0.15

#: machine name -> (config factory, thread count)
BENCH_MACHINES = {
    "smp4": (lambda scale: itanium2_smp(4, scale=scale), 4),
    "altix8": (lambda scale: sgi_altix(8, scale=scale), 8),
}

#: "none" is the raw simulator; the rest run under COBRA.
BENCH_STRATEGIES = ("none", "noprefetch", "excl", "adaptive")

#: benchmark name -> builder(machine, threads) for the timed workloads.
#: Sizes are fixed here so reports stay comparable across PRs.
_BUILDERS = {
    "daxpy": lambda machine, threads: build_daxpy(
        machine, 4096, threads, outer_reps=4
    ),
    "cg": lambda machine, threads: BENCHMARKS["cg"].build(machine, threads, reps=1),
    "mg": lambda machine, threads: BENCHMARKS["mg"].build(machine, threads, reps=1),
}

QUICK_BENCHMARKS = ("daxpy", "cg")
FULL_BENCHMARKS = ("daxpy", "cg", "mg")

#: Fixed cache scale for all bench runs (matches the validate default).
BENCH_SCALE = 16


def run_case(
    benchmark: str,
    machine_name: str,
    strategy: str,
    samples: int = 3,
) -> dict:
    """Time one (benchmark, machine, strategy) case.

    Each sample is a fresh machine and a fresh program build (builds are
    not timed); the median wall time is the headline number.  Returns the
    case dict of the BENCH_perf.json schema.
    """
    factory, threads = BENCH_MACHINES[machine_name]
    build = _BUILDERS[benchmark]
    sample_rows = []
    digest = None
    events = None
    fastpath = None
    cycles = retired = pmu_samples = 0
    for _ in range(max(1, samples)):
        machine = Machine(factory(BENCH_SCALE))
        prog = build(machine, threads)
        t0 = time.perf_counter()
        if strategy == "none":
            result, report = prog.run(), None
        else:
            result, report = run_with_cobra(prog, strategy)
        wall = time.perf_counter() - t0
        cycles = result.cycles
        retired = result.retired
        pmu_samples = report.samples if report is not None else 0
        sample_digest = _digest(_snapshot_arrays(prog))
        sample_events = result.events.snapshot()
        sample_fastpath = fastpath_stats(machine)
        if digest is None:
            digest, events, fastpath = (
                sample_digest, sample_events, sample_fastpath
            )
        elif (digest, events, fastpath) != (
            sample_digest, sample_events, sample_fastpath
        ):
            raise AssertionError(
                f"non-deterministic run: {benchmark}/{machine_name}/{strategy}"
            )
        sample_rows.append(round(wall, 6))
    wall_median = sorted(sample_rows)[len(sample_rows) // 2]
    return {
        "id": f"{machine_name}/{benchmark}/{strategy}",
        "benchmark": benchmark,
        "machine": machine_name,
        "strategy": strategy,
        "threads": threads,
        "scale": BENCH_SCALE,
        "wall_s": sample_rows,
        "wall_s_median": wall_median,
        "sim_cycles": cycles,
        "retired": retired,
        "pmu_samples": pmu_samples,
        "cycles_per_sec": round(cycles / wall_median) if wall_median else 0,
        "retired_per_sec": round(retired / wall_median) if wall_median else 0,
        "samples_per_sec": round(pmu_samples / wall_median, 2) if wall_median else 0,
        "digest": digest,
        "events": events,
        "fastpath": fastpath,
    }


def fastpath_stats(machine: Machine) -> dict:
    """Aggregate trace-compile observability over a machine's cores.

    Everything here is a deterministic function of the simulated run —
    ``run_case`` asserts it is identical across samples, the same way it
    does for digests and memory-event counters.
    """
    per_core = []
    totals = {
        "compiles": 0,
        "invalidations": 0,
        "entries": 0,
        "iterations": 0,
        "compiled_bundles": 0,
        "osr_entries": 0,
        "tree_links": 0,
        "resume_hits": 0,
        "promotions": 0,
        "evicted": 0,
        "exit_sites": 0,
        "bundles": 0,
        "decodes": 0,
    }
    deopts: dict[str, int] = {}
    for core in machine.cores:
        stats = core.trace_jit.stats()
        bundles = core.bundles_executed
        decodes = core.decode_cache.decodes
        per_core.append(
            {
                "cpu": core.cpu_id,
                "compiles": stats["compiles"],
                "compiled_bundles": stats["compiled_bundles"],
                "osr_entries": stats["osr_entries"],
                "tree_links": stats["tree_links"],
                "resume_hits": stats["resume_hits"],
                "bundles": bundles,
                "decodes": decodes,
            }
        )
        for key in ("compiles", "invalidations", "entries", "iterations",
                    "compiled_bundles", "osr_entries", "tree_links",
                    "resume_hits", "promotions", "evicted"):
            totals[key] += stats[key]
        totals["exit_sites"] += len(stats["exit_sites"])
        totals["bundles"] += bundles
        totals["decodes"] += decodes
        for reason, count in stats["deopts"].items():
            deopts[reason] = deopts.get(reason, 0) + count
    bundles = totals.pop("bundles")
    decodes = totals.pop("decodes")
    totals["coverage_pct"] = (
        round(100.0 * totals["compiled_bundles"] / bundles, 2) if bundles else 0.0
    )
    totals["decode_cache_hit_pct"] = (
        round(100.0 * (1.0 - decodes / bundles), 2) if bundles else 0.0
    )
    totals["deopts"] = {k: deopts[k] for k in sorted(deopts)}
    totals["per_core"] = per_core
    return totals


def run_warm_case(
    benchmark: str,
    machine_name: str,
    strategy: str = "adaptive",
    optimize_interval: int = 10_000,
) -> dict:
    """Run one case twice against a shared in-memory profile database.

    The first (cold) run starts from an empty database and records its
    profile; the second (warm) run seeds from it.  The headline number
    is ``ramp_reduction_pct`` — how much of the cold profiling ramp
    (retired instructions until the optimizer reaches steady-state CPI)
    the warm start eliminated.  Fidelity is checked the same way
    :func:`run_case` does: the two runs must produce identical output
    digests, or the profile database changed semantics, not ramp time.
    """
    from .persist import MemoryDisk

    factory, threads = BENCH_MACHINES[machine_name]
    build = _BUILDERS[benchmark]
    disk = MemoryDisk()
    rows = {}
    for label in ("cold", "warm"):
        machine = Machine(factory(BENCH_SCALE))
        prog = build(machine, threads)
        config = replace(
            machine.config.cobra,
            optimize_interval=optimize_interval,
            profile_db=ProfileDBConfig(disk=disk),
        )
        t0 = time.perf_counter()
        result, report = run_with_cobra(prog, strategy, config=config)
        wall = time.perf_counter() - t0
        db = report.profile_db or {}
        ramp = (
            report.ramp_retired
            if report.ramp_retired is not None
            else result.retired
        )
        rows[label] = {
            "wall_s": round(wall, 6),
            "retired": result.retired,
            "ramp_retired": ramp,
            "digest": _digest(_snapshot_arrays(prog)),
            "source": db.get("source", "off"),
            "seeded_loops": db.get("seeded_loops", 0),
            "deployments": len(report.deployments),
        }
    cold_ramp = rows["cold"]["ramp_retired"]
    warm_ramp = rows["warm"]["ramp_retired"]
    reduction = (
        100.0 * (1.0 - warm_ramp / cold_ramp) if cold_ramp else 100.0
    )
    return {
        "id": f"{machine_name}/{benchmark}/{strategy}",
        "benchmark": benchmark,
        "machine": machine_name,
        "strategy": strategy,
        "threads": threads,
        "scale": BENCH_SCALE,
        "optimize_interval": optimize_interval,
        "cold": rows["cold"],
        "warm": rows["warm"],
        "ramp_reduction_pct": round(reduction, 2),
        "digests_match": rows["cold"]["digest"] == rows["warm"]["digest"],
        # a warm start must consume the cold run's entry, and when the
        # cold run proved deployments, re-deploy at least one of them
        "warm_seeded": (
            rows["warm"]["source"] == "hit"
            and (
                rows["cold"]["deployments"] == 0
                or rows["warm"]["seeded_loops"] > 0
            )
        ),
    }


def run_fleet_case(
    instances: int = 6,
    quorum: int | None = None,
    strategy: str = "adaptive",
    optimize_interval: int = 10_000,
    jobs: int = 1,
) -> dict:
    """Run one clean-transport fleet and measure the warm-start payoff.

    The fleet analogue of :func:`run_warm_case`: the cold half profiles
    from scratch, the daemon publishes the quorum-backed decisions, and
    the warm half is dispatched with them.  The headline number is the
    same ``ramp_reduction_pct`` (max cold ramp vs max seeded warm ramp),
    with the fidelity gate widened to the whole fleet: every instance's
    digest must equal the solo reference.
    """
    from .fleet import FleetHarness

    t0 = time.perf_counter()
    report = FleetHarness(
        instances=instances,
        quorum=quorum,
        strategy=strategy,
        optimize_interval=optimize_interval,
    ).run(jobs=jobs)
    wall = time.perf_counter() - t0
    cold_ramps = [
        r.ramp_retired for r in report.records
        if r.round == "cold" and r.ramp_retired is not None
    ]
    warm_ramps = [
        r.ramp_retired for r in report.records
        if r.round == "warm" and r.seeded and r.ramp_retired is not None
    ]
    cold_ramp = max(cold_ramps) if cold_ramps else 0
    warm_ramp = max(warm_ramps) if warm_ramps else cold_ramp
    reduction = (
        100.0 * (1.0 - warm_ramp / cold_ramp) if cold_ramp else 100.0
    )
    seeded = sum(1 for r in report.records if r.round == "warm" and r.seeded)
    return {
        "id": f"fleet{instances}/{report.workload}/{strategy}",
        "workload": report.workload,
        "instances": instances,
        "quorum": report.quorum,
        "optimize_interval": optimize_interval,
        "wall_s": round(wall, 6),
        "published": report.published,
        "warm_seeded": report.warm > 0 and seeded == report.warm,
        "cold_ramp_retired": cold_ramp,
        "warm_ramp_retired": warm_ramp,
        "ramp_reduction_pct": round(reduction, 2),
        "digests_match": all(
            r.digest == report.reference_digest for r in report.records
        ),
        "ok": report.ok,
    }


def run_bench(
    benchmarks: Iterable[str] | None = None,
    machines: Iterable[str] | None = None,
    strategies: Iterable[str] | None = None,
    samples: int = 3,
    quick: bool = False,
    jobs: int = 1,
) -> dict:
    """Run the full matrix; return the BENCH_perf.json document.

    ``jobs > 1`` times cases in parallel worker processes.  Digests,
    counters and fastpath stats stay byte-identical (each case is an
    isolated fresh machine); wall timings of co-scheduled cases will
    contend for the host, so commit baselines from ``jobs=1`` runs.
    """
    from .parallel import run_tasks

    if quick:
        benchmarks = benchmarks or QUICK_BENCHMARKS
        machines = machines or ("smp4",)
        samples = min(samples, 2)
    else:
        benchmarks = benchmarks or FULL_BENCHMARKS
        machines = machines or tuple(BENCH_MACHINES)
    strategies = strategies or BENCH_STRATEGIES
    t0 = time.perf_counter()
    cases = run_tasks(
        [
            (run_case, (b, m, s, samples))
            for m in machines
            for b in benchmarks
            for s in strategies
        ],
        jobs=jobs,
    )
    return {
        "schema": BENCH_SCHEMA,
        "created_unix": int(time.time()),
        "host": {
            "python": sys.version.split()[0],
            "platform": platform.platform(),
        },
        "quick": quick,
        "samples_per_case": samples,
        "cases": cases,
        "totals": {
            "wall_s": round(time.perf_counter() - t0, 3),
            "sim_cycles": sum(c["sim_cycles"] for c in cases),
            "retired": sum(c["retired"] for c in cases),
        },
    }


def format_report(report: dict) -> str:
    """Human-readable table of a bench report."""
    header = (
        f"{'case':<28} {'wall(s)':>9} {'Mcyc/s':>8} {'Minstr/s':>9} "
        f"{'trace%':>7} {'digest':>10}"
    )
    lines = [header, "-" * len(header)]
    for case in report["cases"]:
        fastpath = case.get("fastpath") or {}
        lines.append(
            f"{case['id']:<28} {case['wall_s_median']:>9.3f} "
            f"{case['cycles_per_sec'] / 1e6:>8.2f} "
            f"{case['retired_per_sec'] / 1e6:>9.2f} "
            f"{fastpath.get('coverage_pct', 0.0):>7.1f} "
            f"{case['digest'][:10]:>10}"
        )
    totals = report["totals"]
    lines.append(
        f"total wall {totals['wall_s']:.3f}s over "
        f"{len(report['cases'])} case(s), {report['samples_per_case']} sample(s) each"
    )
    return "\n".join(lines)


def compare_reports(
    baseline: dict, current: dict, threshold: float = REGRESSION_THRESHOLD
) -> tuple[list[str], bool]:
    """Diff ``current`` against a committed ``baseline`` report.

    Returns ``(lines, ok)`` — one line per case shared by both reports.
    ``ok`` is False on any wall-clock regression beyond ``threshold``
    (fractional, vs. the baseline median) or any digest change (a digest
    change is a semantics change, never a perf delta).  Cases present in
    only one report are noted but don't fail the comparison — the matrix
    is allowed to grow.
    """
    lines: list[str] = []
    ok = True
    base_cases = {c["id"]: c for c in baseline.get("cases", [])}
    cur_cases = {c["id"]: c for c in current.get("cases", [])}
    for cid in sorted(base_cases):
        base = base_cases[cid]
        cur = cur_cases.get(cid)
        if cur is None:
            lines.append(f"{cid:<28} MISSING from current report")
            continue
        base_wall = base["wall_s_median"]
        cur_wall = cur["wall_s_median"]
        ratio = cur_wall / base_wall if base_wall else float("inf")
        delta_pct = (ratio - 1.0) * 100.0
        if base["digest"] != cur["digest"]:
            ok = False
            verdict = "DIGEST-MISMATCH"
        elif base_wall and ratio > 1.0 + threshold:
            ok = False
            verdict = f"REGRESSION(+{delta_pct:.1f}%)"
        else:
            verdict = f"ok({delta_pct:+.1f}%)"
        lines.append(
            f"{cid:<28} {base_wall:>8.3f}s -> {cur_wall:>8.3f}s  {verdict}"
        )
    for cid in sorted(set(cur_cases) - set(base_cases)):
        lines.append(f"{cid:<28} new case (not in baseline)")
    return lines, ok
