"""Exception hierarchy for the COBRA reproduction.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch a single type at API boundaries.  Subsystems raise the
most specific subclass that applies.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class IsaError(ReproError):
    """Base class for ISA-level errors (encoding, registers, bundles)."""


class AssemblyError(IsaError):
    """Raised when assembly text cannot be parsed into instructions."""

    def __init__(self, message: str, line: int | None = None) -> None:
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class RegisterError(IsaError):
    """Raised on an out-of-range or ill-typed register access."""


class BundleError(IsaError):
    """Raised when instructions cannot be packed into a legal bundle."""


class BinaryError(IsaError):
    """Raised on malformed binary images or illegal patches."""


class MemoryError_(ReproError):
    """Raised on invalid simulated memory operations.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`MemoryError`.
    """


class MachineError(ReproError):
    """Raised on machine construction or execution faults."""


class SimulationFault(MachineError):
    """Raised when a simulated core faults (bad PC, illegal instruction)."""

    def __init__(self, message: str, pc: int | None = None, cpu: int | None = None) -> None:
        self.pc = pc
        self.cpu = cpu
        prefix = ""
        if cpu is not None:
            prefix += f"cpu {cpu}: "
        if pc is not None:
            prefix += f"pc {pc:#x}: "
        super().__init__(prefix + message)


class HpmError(ReproError):
    """Raised on invalid performance-monitoring configuration."""


class RuntimeError_(ReproError):
    """Raised by the simulated threading / OpenMP runtime.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`RuntimeError`.
    """


class CompilerError(ReproError):
    """Raised when kernel IR cannot be lowered to machine code."""


class CobraError(ReproError):
    """Raised by the COBRA framework (trace cache, optimizer, deployment)."""


class TraceCacheError(CobraError):
    """Raised when the trace cache is exhausted or a patch is illegal."""


class FaultError(ReproError):
    """Raised on invalid use of the fault-injection subsystem itself.

    Never raised *because* a fault was injected — injected faults must
    be degraded around, not propagated; this error flags a malformed
    plan or ledger misuse (e.g. classifying the same event twice).
    """


class PersistError(ReproError):
    """Raised on invalid use of the persistence subsystem itself.

    Never raised *because* a checkpoint is damaged — recovery falls
    back past corrupt snapshots and truncated journal tails, accounting
    them in stats; this error flags a malformed store layout or API
    misuse (e.g. appending to a journal after recovery repair failed).
    """


class ProfileStateError(PersistError):
    """A persisted profile failed structural validation on restore.

    Raised by :meth:`repro.core.profiler.SystemProfiler.restore_state`
    when a recovered or cross-run profile is torn, truncated, or
    schema-drifted.  Restore is two-phase (validate everything, then
    commit), so when this raises the live profiler is untouched — a
    damaged profile can never half-warm-start the optimizer.  ``path``
    names the offending field.
    """

    def __init__(self, message: str, path: str = "") -> None:
        self.path = path
        if path:
            message = f"{path}: {message}"
        super().__init__(message)


class SimulatedCrash(ReproError):
    """The fault injector killed the run at a persistence boundary.

    Models ``kill -9`` at a journal/snapshot write: the process dies,
    volatile state is gone, and only bytes the injectable disk had made
    durable (possibly including a torn final record) survive.  The
    recovery-equivalence harness catches this, then proves a resumed
    run is indistinguishable from one that was never interrupted.
    """


class FleetError(ReproError):
    """Raised on invalid use of the fleet control plane itself.

    Never raised *because* a transport fault fired or a stream went bad
    — the daemon quarantines poisoned streams and rejects damaged
    frames, the agent degrades to local-only optimization; this error
    flags a malformed fleet configuration or protocol misuse.
    """


class WorkloadError(ReproError):
    """Raised on invalid workload parameters."""


class ValidationError(ReproError):
    """Raised on invalid use of the validation subsystem itself."""


class InvariantViolation(ValidationError):
    """A documented invariant did not hold during a checked run.

    Structured so tests and the ``repro validate`` CLI can report
    exactly what broke: ``invariant`` names the violated rule,
    ``line`` is the cache-line index involved (``None`` for ISA-level
    violations), ``states`` maps cpu id -> MESI state letter at the
    time of the check, and ``event`` describes the triggering access.
    """

    def __init__(
        self,
        message: str,
        *,
        invariant: str = "",
        line: int | None = None,
        states: dict[int, str] | None = None,
        event: object = None,
    ) -> None:
        self.invariant = invariant
        self.line = line
        self.states = dict(states) if states else {}
        self.event = event
        parts = []
        if invariant:
            parts.append(f"[{invariant}]")
        parts.append(message)
        if line is not None:
            parts.append(f"line {line:#x}")
        if self.states:
            inner = ",".join(f"cpu{c}={s}" for c, s in sorted(self.states.items()))
            parts.append(f"states {{{inner}}}")
        if event is not None:
            parts.append(f"on {event}")
        super().__init__(" ".join(parts))
