"""The OpenMP DAXPY kernel (paper §2, Figures 1-3).

``y[i] = y[i] + a * x[i]`` inside an outer repetition loop, statically
chunked across threads — the paper's motivating example.  The builder
compiles the icc-style binary (software-pipelined ``br.ctop`` loop,
rotating prefetch queue, prologue prefetches) and reports the values
needed to verify numerics.

The paper's three working-set classes (128 KB, 512 KB, 2 MB, both
arrays counted) map to element counts through the machine's cache scale
factor, so cache-fit crossovers land where the paper's do.
"""

from __future__ import annotations

import numpy as np

from ..compiler.kernels import StreamLoop, Term
from ..compiler.prefetch import AGGRESSIVE, PrefetchPlan
from ..cpu.machine import Machine
from ..errors import WorkloadError
from ..runtime.team import ParallelProgram

__all__ = ["build_daxpy", "working_set_elems", "DAXPY_CLASSES", "verify_daxpy"]

#: Paper working-set labels -> total bytes (both arrays) before scaling.
DAXPY_CLASSES = {"128K": 128 * 1024, "512K": 512 * 1024, "2M": 2 * 1024 * 1024}


def working_set_elems(label: str, scale: int) -> int:
    """Elements per array for a paper working-set class at ``scale``."""
    try:
        total = DAXPY_CLASSES[label]
    except KeyError:
        raise WorkloadError(
            f"unknown working set {label!r} (choose from {sorted(DAXPY_CLASSES)})"
        ) from None
    return total // scale // 2 // 8  # two arrays, 8-byte elements


def build_daxpy(
    machine: Machine,
    n_elems: int,
    n_threads: int,
    outer_reps: int,
    a: float = 2.0,
    plan: PrefetchPlan = AGGRESSIVE,
    name: str = "daxpy",
) -> ParallelProgram:
    """Compile and build the parallel DAXPY program (ready to run)."""
    if n_elems < 16 * n_threads:
        raise WorkloadError("working set too small to chunk across threads")
    prog = ParallelProgram(machine, name)
    prog.array("x", n_elems, np.arange(n_elems, dtype=float))
    prog.array("y", n_elems, 1.0)
    fn = prog.kernel(
        StreamLoop(name, dest="y", terms=(Term("y", 1.0), Term("x", a))), plan
    )
    prog.parallel_for(fn, n_elems, n_threads)
    prog.build(outer_reps=outer_reps)
    return prog


def verify_daxpy(prog: ParallelProgram, outer_reps: int, a: float = 2.0) -> bool:
    """Check the numerical result against the closed form."""
    n = len(prog.f64("x"))
    expect = 1.0 + outer_reps * a * np.arange(n, dtype=float)
    return bool(np.allclose(prog.f64("y"), expect))
