"""Workloads: the OpenMP DAXPY example and the NPB-like suite."""

from .daxpy import DAXPY_CLASSES, build_daxpy, verify_daxpy, working_set_elems
from .npb import BENCHMARKS, REPORTED

__all__ = [
    "build_daxpy",
    "verify_daxpy",
    "working_set_elems",
    "DAXPY_CLASSES",
    "BENCHMARKS",
    "REPORTED",
]
