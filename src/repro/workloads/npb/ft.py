"""FT — 3-D FFT kernel (structural analogue).

Per iteration: an *evolve* pointwise multiply by the twiddle array,
two butterfly stages (linear combinations of elements ``stride`` apart,
scaled by per-element twiddles — real-valued analogue of the complex
butterflies), a bit-reversal-like permutation implemented as a gather
(this is FT's non-counted loop, giving it its ``br.wtop`` entries in
Table 1), and a checksum reduction.

The small stride of stage one keeps its sharing intra-chunk; stage two's
large stride reads across thread chunks, which is where FT's coherent
misses come from.
"""

from __future__ import annotations

import numpy as np

from ...compiler.kernels import GatherLoop, ReduceLoop, StreamLoop, Term
from ...compiler.prefetch import AGGRESSIVE, PrefetchPlan
from ...cpu.machine import Machine
from ...runtime.team import Call, ParallelProgram, static_chunks
from .common import NpbBenchmark, apply_gather, apply_stream, register

__all__ = ["FT"]

_SIDE = 32
_N = _SIDE * _SIDE
_HALO = _SIDE + 16


class FtBenchmark(NpbBenchmark):
    name = "ft"
    default_reps = 4

    def __init__(self) -> None:
        rng = np.random.default_rng(11)
        self.n = _N
        self.halo = _HALO
        padded = _N + 2 * _HALO
        self.init = {
            "re": rng.uniform(0.5, 1.5, padded),
            "tw1": rng.uniform(0.9, 1.1, padded),
            "tw2": rng.uniform(0.9, 1.1, padded),
            "work": np.zeros(padded),
            "st1": np.zeros(padded),
            "st2": np.zeros(padded),
            "out": np.zeros(padded),
        }
        # bit-reversal-like permutation as a 1-nnz-per-row CSR gather
        perm = rng.permutation(_N)
        self.ptr = np.arange(_N + 1, dtype=np.int64)
        self.col = (perm + _HALO).astype(np.int64)  # halo-adjusted source index
        self.val = np.ones(_N)

        self.evolve = StreamLoop("ft_evolve", dest="work", terms=(Term("re", 1.0, 0),), scale="tw1")
        self.stage1 = StreamLoop(
            "ft_fftx",
            dest="st1",
            terms=(Term("work", 0.5, 0), Term("work", 0.5, 8)),
            scale="tw2",
        )
        self.stage2 = StreamLoop(
            "ft_ffty",
            dest="st2",
            terms=(Term("st1", 0.5, 0), Term("st1", 0.5, _SIDE)),
            scale="tw1",
        )
        self.bitrev = GatherLoop("ft_bitrev", ptr="ptr", col="col", val="aval", x="st2", y="out")
        self.checksum = ReduceLoop("ft_checksum", src_a="out")

    def build(
        self,
        machine: Machine,
        n_threads: int,
        plan: PrefetchPlan = AGGRESSIVE,
        reps: int | None = None,
    ) -> ParallelProgram:
        reps = reps or self.default_reps
        prog = ParallelProgram(machine, self.name)
        for name, data in self.init.items():
            prog.array(name, len(data), data)
        prog.int_array("ptr", _N + 1, self.ptr)
        prog.int_array("col", _N, self.col)
        prog.array("aval", _N, self.val)
        prog.array("__res", 16 * n_threads)
        res = prog.arrays["__res"]

        chunks = static_chunks(_N, n_threads)
        for template in (self.evolve, self.stage1, self.stage2):
            fn = prog.kernel(template, plan)
            prog.region(
                [
                    prog.make_call(fn, _HALO + start, count) if count else None
                    for start, count in chunks
                ]
            )
        gfn = prog.kernel(self.bitrev, plan)
        calls = []
        for start, count in chunks:
            if count:
                # rows are un-haloed; y=out is halo-indexed via its own addr
                call = prog.make_call(gfn, start, count)
                args = list(call.args)
                # patch the y address to the halo origin (gather rows use
                # absolute row ids; out rows live at halo offset)
                for i, spec in enumerate(gfn.params):
                    if spec.kind == "addr" and spec.array == "out":
                        args[i] = prog.arrays["out"].addr(_HALO + start)
                calls.append(Call(gfn, tuple(args)))
            else:
                calls.append(None)
        prog.region(calls)
        rfn = prog.kernel(self.checksum, plan)
        prog.region(
            [
                prog.make_call(
                    rfn, _HALO + start, count, raw={"result": res.addr(16 * tid)}
                )
                if count
                else None
                for tid, (start, count) in enumerate(chunks)
            ]
        )
        prog.build(outer_reps=reps)
        return prog

    def reference(self, reps: int) -> dict[str, np.ndarray]:
        arrays = {k: v.copy() for k, v in self.init.items()}
        for _ in range(reps):
            apply_stream(arrays, self.evolve, _HALO, _N)
            apply_stream(arrays, self.stage1, _HALO, _N)
            apply_stream(arrays, self.stage2, _HALO, _N)
            out_rows = arrays["out"][_HALO : _HALO + _N]
            src = arrays["st2"]
            out_rows += self.val * src[self.col]
        return arrays

    def verify(self, prog: ParallelProgram, reps: int | None = None) -> bool:
        reps = reps or self.default_reps
        expect = self.reference(reps)
        for name in ("work", "st1", "st2", "out"):
            got = prog.f64(name)[: len(expect[name])]
            if not np.allclose(got, expect[name], rtol=self.rtol):
                return False
        whole = expect["out"][_HALO : _HALO + _N].sum()
        return bool(np.isclose(prog.f64("__res")[::16].sum(), whole, rtol=1e-9))


FT = register(FtBenchmark())
