"""NPB-like benchmark suite (OpenMP NAS Parallel Benchmarks analogues).

Importing this package registers all eight benchmarks in
:data:`BENCHMARKS`: the simulated CFD applications (BT, SP, LU) and the
five kernels (FT, MG, CG, EP, IS).
"""

from .common import BENCHMARKS, NpbBenchmark
from .bt import BT
from .sp import SP
from .lu import LU
from .ft import FT
from .mg import MG
from .cg import CG
from .ep import EP
from .is_ import IS

#: The six benchmarks the paper reports final results for (EP and IS are
#: excluded: no long-latency coherent misses, §5.2).
REPORTED = ("bt", "sp", "lu", "ft", "mg", "cg")

__all__ = [
    "BENCHMARKS",
    "NpbBenchmark",
    "REPORTED",
    "BT",
    "SP",
    "LU",
    "FT",
    "MG",
    "CG",
    "EP",
    "IS",
]
