"""EP — embarrassingly parallel kernel (structural analogue).

Pure register-resident FP work (the Gaussian-pair arithmetic core) plus
a small *private* per-thread tally histogram.  EP touches almost no
shared data — the paper excludes it from the final results because it
"doesn't show any long latency coherent misses", and this analogue
reproduces that property mechanistically (nothing is shared except the
barrier).
"""

from __future__ import annotations

import numpy as np

from ...compiler.kernels import ComputeLoop, HistogramLoop
from ...compiler.prefetch import AGGRESSIVE, PrefetchPlan
from ...cpu.machine import Machine
from ...runtime.team import ParallelProgram, static_chunks
from .common import NpbBenchmark, register

__all__ = ["EP"]

_N_KEYS = 4096
_N_BINS = 64
_BIN_PAD = 16  # pad each thread's bins to a line multiple -> private lines
_COMPUTE_ITERS = 3000


class EpBenchmark(NpbBenchmark):
    name = "ep"
    default_reps = 4

    def __init__(self) -> None:
        rng = np.random.default_rng(41)
        self.keys = rng.integers(0, _N_BINS, _N_KEYS).astype(np.int64)
        self.compute = ComputeLoop("ep_gauss", flops_per_iter=4)
        self.tally = HistogramLoop("ep_tally", key="keys", cnt="bins")

    def build(
        self,
        machine: Machine,
        n_threads: int,
        plan: PrefetchPlan = AGGRESSIVE,
        reps: int | None = None,
    ) -> ParallelProgram:
        reps = reps or self.default_reps
        prog = ParallelProgram(machine, self.name)
        prog.int_array("keys", _N_KEYS, self.keys)
        stride = _N_BINS + _BIN_PAD
        prog.int_array("bins", stride * n_threads)
        bins = prog.arrays["bins"]

        c_fn = prog.kernel(self.compute, plan)
        chunks = static_chunks(_N_KEYS, n_threads)
        prog.region([prog.make_call(c_fn, 0, _COMPUTE_ITERS) for _ in range(n_threads)])
        t_fn = prog.kernel(self.tally, plan)
        prog.region(
            [
                prog.make_call(
                    t_fn, start, count, raw={"bins": bins.addr(stride * tid)}
                )
                if count
                else None
                for tid, (start, count) in enumerate(chunks)
            ]
        )
        prog.build(outer_reps=reps)
        return prog

    def reference(self, reps: int, n_threads: int) -> np.ndarray:
        stride = _N_BINS + _BIN_PAD
        bins = np.zeros(stride * n_threads, dtype=np.int64)
        chunks = static_chunks(_N_KEYS, n_threads)
        for _ in range(reps):
            for tid, (start, count) in enumerate(chunks):
                for key in self.keys[start : start + count]:
                    bins[stride * tid + key] += 1
        return bins

    def verify(self, prog: ParallelProgram, reps: int | None = None) -> bool:
        reps = reps or self.default_reps
        n_threads = prog.n_threads
        expect = self.reference(reps, n_threads)
        got = prog.i64("bins")
        return bool(np.array_equal(got[: len(expect)], expect))


EP = register(EpBenchmark())
