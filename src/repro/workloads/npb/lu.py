"""LU — SSOR CFD application (structural analogue).

LU's SSOR step sweeps a lower-triangular system (reads -1 and -side
neighbours) and an upper-triangular system (+1 and +side), around a
Jacobian-like pointwise stage and the rhs.  The directional sweeps are
the cross-chunk sharers.  Double buffering replaces the wavefront
dependence (a documented structural substitution — the sharing pattern
at chunk boundaries is what matters for coherent traffic).
"""

from __future__ import annotations

from ...compiler.kernels import Term
from .common import StencilSpec, register
from .grid import GridBenchmark

__all__ = ["LU"]

_SIDE = 32


def _specs(side: int) -> list[StencilSpec]:
    return [
        StencilSpec(
            "lu_rhs",
            dest="rsd",
            terms=(
                Term("u", -4.0, 0),
                Term("u", 1.0, -1),
                Term("u", 1.0, 1),
                Term("u", 1.0, -side),
                Term("u", 1.0, side),
            ),
        ),
        StencilSpec(
            "lu_jacld",
            dest="jac",
            terms=(Term("rsd", 0.8, 0), Term("u", 0.2, 0)),
        ),
        StencilSpec(
            "lu_blts",
            dest="lo",
            terms=(Term("jac", 0.6, 0), Term("jac", 0.2, -1), Term("jac", 0.2, -side)),
        ),
        StencilSpec(
            "lu_buts",
            dest="hi",
            terms=(Term("lo", 0.6, 0), Term("lo", 0.2, 1), Term("lo", 0.2, side)),
        ),
        StencilSpec(
            "lu_update",
            dest="u",
            terms=(Term("u", 1.0, 0), Term("hi", 0.01, 0)),
        ),
    ]


LU = register(GridBenchmark("lu", _SIDE, _specs(_SIDE), default_reps=6))
