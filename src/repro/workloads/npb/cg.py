"""CG — conjugate gradient kernel (structural analogue).

The CG iteration over a random sparse matrix: a CSR sparse
matrix-vector product (the gather with its non-counted inner loop), two
dot-product reductions whose per-thread partial sums land in *adjacent
slots of one result vector* — NPB CG's classic false-sharing site —
and three vector updates.  The gathered ``p`` vector is read by every
thread while being rewritten each iteration, so CG has the strongest
read-sharing of the suite (matching its top ranking in the paper's
Figures 5-6).
"""

from __future__ import annotations

import numpy as np

from ...compiler.kernels import GatherLoop, ReduceLoop, StreamLoop, Term
from ...compiler.prefetch import AGGRESSIVE, PrefetchPlan
from ...cpu.machine import Machine
from ...runtime.team import ParallelProgram, static_chunks
from .common import NpbBenchmark, register

__all__ = ["CG"]

_N = 512
_NNZ_PER_ROW = 4

#: False sharing is intentional: partial dot products go to *adjacent*
#: 8-byte slots (stride 1), several threads per 128-byte line.
_RES_STRIDE = 1


class CgBenchmark(NpbBenchmark):
    name = "cg"
    default_reps = 5

    def __init__(self) -> None:
        rng = np.random.default_rng(31)
        self.n = _N
        cols = np.empty((_N, _NNZ_PER_ROW), dtype=np.int64)
        for i in range(_N):
            cols[i] = rng.choice(_N, _NNZ_PER_ROW, replace=False)
            cols[i].sort()
        self.ptr = np.arange(_N + 1, dtype=np.int64) * _NNZ_PER_ROW
        self.col = cols.reshape(-1)
        self.val = rng.uniform(0.01, 0.05, _N * _NNZ_PER_ROW)
        self.init = {
            "x": np.zeros(_N),
            "r": rng.uniform(0.5, 1.5, _N),
            "p": rng.uniform(0.5, 1.5, _N),
            "q": np.zeros(_N),
        }
        self.zero_q = StreamLoop("cg_zeroq", dest="q", terms=(Term("q", 0.0, 0),))
        self.spmv = GatherLoop("cg_spmv", ptr="ptr", col="colv", val="aval", x="p", y="q")
        self.dot_rr = ReduceLoop("cg_rho", src_a="r", src_b="r")
        self.dot_pq = ReduceLoop("cg_pq", src_a="p", src_b="q")
        self.update_x = StreamLoop(
            "cg_updx", dest="x", terms=(Term("x", 1.0, 0), Term("p", 0.1, 0))
        )
        self.update_r = StreamLoop(
            "cg_updr", dest="r", terms=(Term("r", 1.0, 0), Term("q", -0.05, 0))
        )
        self.update_p = StreamLoop(
            "cg_updp", dest="p", terms=(Term("p", 0.5, 0), Term("r", 1.0, 0))
        )

    def build(
        self,
        machine: Machine,
        n_threads: int,
        plan: PrefetchPlan = AGGRESSIVE,
        reps: int | None = None,
    ) -> ParallelProgram:
        reps = reps or self.default_reps
        prog = ParallelProgram(machine, self.name)
        for name, data in self.init.items():
            prog.array(name, _N, data)
        prog.int_array("ptr", _N + 1, self.ptr)
        prog.int_array("colv", _N * _NNZ_PER_ROW, self.col)
        prog.array("aval", _N * _NNZ_PER_ROW, self.val)
        prog.array("__res", 2 * _RES_STRIDE * max(n_threads, 16) + 16)
        res = prog.arrays["__res"]

        chunks = static_chunks(_N, n_threads)
        z_fn = prog.kernel(self.zero_q, plan)
        g_fn = prog.kernel(self.spmv, plan)
        rr_fn = prog.kernel(self.dot_rr, plan)
        pq_fn = prog.kernel(self.dot_pq, plan)
        x_fn = prog.kernel(self.update_x, plan)
        r_fn = prog.kernel(self.update_r, plan)
        p_fn = prog.kernel(self.update_p, plan)

        def simple_region(fn):
            prog.region(
                [
                    prog.make_call(fn, start, count) if count else None
                    for start, count in chunks
                ]
            )

        simple_region(z_fn)
        simple_region(g_fn)
        prog.region(
            [
                prog.make_call(
                    rr_fn, start, count, raw={"result": res.addr(_RES_STRIDE * tid)}
                )
                if count
                else None
                for tid, (start, count) in enumerate(chunks)
            ]
        )
        prog.region(
            [
                prog.make_call(
                    pq_fn, start, count,
                    raw={"result": res.addr(_RES_STRIDE * (n_threads + tid))},
                )
                if count
                else None
                for tid, (start, count) in enumerate(chunks)
            ]
        )
        simple_region(x_fn)
        simple_region(r_fn)
        simple_region(p_fn)
        prog.build(outer_reps=reps)
        return prog

    def reference(self, reps: int) -> dict[str, np.ndarray]:
        a = {k: v.copy() for k, v in self.init.items()}
        for _ in range(reps):
            a["q"][:] = 0.0
            for i in range(_N):
                lo, hi = int(self.ptr[i]), int(self.ptr[i + 1])
                a["q"][i] += float(np.dot(self.val[lo:hi], a["p"][self.col[lo:hi]]))
            a["x"] = a["x"] + 0.1 * a["p"]
            a["r"] = a["r"] - 0.05 * a["q"]
            a["p"] = 0.5 * a["p"] + a["r"]
        return a

    def verify(self, prog: ParallelProgram, reps: int | None = None) -> bool:
        reps = reps or self.default_reps
        expect = self.reference(reps)
        for name in ("x", "r", "p", "q"):
            if not np.allclose(prog.f64(name), expect[name], rtol=self.rtol):
                return False
        return True


CG = register(CgBenchmark())
