"""BT — block tridiagonal CFD application (structural analogue).

One time step: compute the right-hand side from the 5-point stencil of
``u``, sweep the x direction (i-contiguous shifts), sweep the y
direction (stride-``side`` shifts — the sweep that shares rows across
thread chunks), and add the update back.  Four sweeps per step echoes
BT's lower loop count relative to SP (paper Table 1: BT 140 lfetch /
34 br.ctop vs SP 276 / 67).
"""

from __future__ import annotations

from ...compiler.kernels import Term
from .common import StencilSpec, register
from .grid import GridBenchmark

__all__ = ["BT"]

_SIDE = 32


def _specs(side: int) -> list[StencilSpec]:
    return [
        StencilSpec(
            "bt_rhs",
            dest="rhs",
            terms=(
                Term("u", -4.0, 0),
                Term("u", 1.0, -1),
                Term("u", 1.0, 1),
                Term("u", 1.0, -side),
                Term("u", 1.0, side),
            ),
        ),
        StencilSpec(
            "bt_xsolve",
            dest="lhsx",
            terms=(Term("rhs", 0.5, 0), Term("rhs", 0.25, -1), Term("rhs", 0.25, 1)),
        ),
        StencilSpec(
            "bt_ysolve",
            dest="lhsy",
            terms=(
                Term("lhsx", 0.5, 0),
                Term("lhsx", 0.25, -side),
                Term("lhsx", 0.25, side),
            ),
        ),
        StencilSpec(
            "bt_add",
            dest="u",
            terms=(Term("u", 1.0, 0), Term("lhsy", 0.01, 0)),
        ),
    ]


BT = register(GridBenchmark("bt", _SIDE, _specs(_SIDE), default_reps=6))
