"""SP — scalar pentadiagonal CFD application (structural analogue).

SP factors its solves into more, smaller sweeps than BT (paper Table 1
gives SP roughly twice BT's loop and prefetch counts): per time step we
run seven sweeps — rhs, two x-direction factor sweeps, two y-direction
factor sweeps (stride-``side``, the cross-chunk sharers), a pinvr-like
pointwise transform, and the add-back.
"""

from __future__ import annotations

from ...compiler.kernels import Term
from .common import StencilSpec, register
from .grid import GridBenchmark

__all__ = ["SP"]

_SIDE = 32


def _specs(side: int) -> list[StencilSpec]:
    return [
        StencilSpec(
            "sp_rhs",
            dest="rhs",
            terms=(
                Term("u", -4.0, 0),
                Term("u", 1.0, -1),
                Term("u", 1.0, 1),
                Term("u", 1.0, -side),
                Term("u", 1.0, side),
            ),
        ),
        StencilSpec(
            "sp_txinvr",
            dest="rs2",
            terms=(Term("rhs", 0.9, 0), Term("speed", 0.1, 0)),
        ),
        StencilSpec(
            "sp_xsolve1",
            dest="rsx",
            terms=(Term("rs2", 0.5, 0), Term("rs2", 0.25, -1), Term("rs2", 0.25, 1)),
        ),
        StencilSpec(
            "sp_xsolve2",
            dest="rsx2",
            terms=(Term("rsx", 0.6, 0), Term("rsx", 0.2, -2), Term("rsx", 0.2, 2)),
        ),
        StencilSpec(
            "sp_ysolve1",
            dest="rsy",
            terms=(
                Term("rsx2", 0.5, 0),
                Term("rsx2", 0.25, -side),
                Term("rsx2", 0.25, side),
            ),
        ),
        StencilSpec(
            "sp_ysolve2",
            dest="rsy2",
            terms=(
                Term("rsy", 0.6, 0),
                Term("rsy", 0.2, -2 * side),
                Term("rsy", 0.2, 2 * side),
            ),
        ),
        StencilSpec(
            "sp_add",
            dest="u",
            terms=(Term("u", 1.0, 0), Term("rsy2", 0.01, 0)),
        ),
    ]


SP = register(GridBenchmark("sp", _SIDE, _specs(_SIDE), default_reps=6))
