"""Generic 2-D grid stencil benchmark (the BT / SP / LU chassis).

The simulated CFD applications (BT, SP, LU) share a structure: per
time step, several grid sweeps — alternating i-contiguous and
j-direction (stride-``side``) stencils — each parallelized over the
flattened index range with OpenMP static chunking.  The j-direction
sweeps read rows owned by neighbouring threads, which is the inherent
true sharing; the compiler's 9-lines-ahead prefetch adds the
prefetch-induced sharing COBRA removes.

Arrays carry a halo of ``side`` elements on both ends so stencil shifts
never leave the allocation; all sweeps are double-buffered (destination
is never a shifted source), so parallel execution is deterministic and
the NumPy mirror is exact.
"""

from __future__ import annotations

import numpy as np

from ...compiler.kernels import ReduceLoop
from ...compiler.prefetch import AGGRESSIVE, PrefetchPlan
from ...cpu.machine import Machine
from ...errors import WorkloadError
from ...runtime.team import ParallelProgram, static_chunks
from .common import NpbBenchmark, StencilSpec, apply_stream

__all__ = ["GridBenchmark"]


class GridBenchmark(NpbBenchmark):
    """A sequence of double-buffered stencil sweeps over a 2-D grid."""

    def __init__(
        self,
        name: str,
        side: int,
        specs: list[StencilSpec],
        default_reps: int = 6,
        with_residual: bool = True,
        seed: int = 7,
    ) -> None:
        self.name = name
        self.side = side
        self.n = side * side
        self.halo = 2 * side + 16
        self.specs = specs
        self.default_reps = default_reps
        self.with_residual = with_residual
        self.seed = seed
        names: set[str] = set()
        for spec in specs:
            names.add(spec.dest)
            for term in spec.terms:
                names.add(term.array)
                if term.array == spec.dest and term.shift != 0:
                    raise WorkloadError(
                        f"{name}/{spec.name}: in-place shifted stencil would race"
                    )
                if abs(term.shift) > self.halo:
                    raise WorkloadError(f"{name}/{spec.name}: shift exceeds halo")
            if spec.scale is not None:
                names.add(spec.scale)
        self.array_names = sorted(names)

    # -- construction -------------------------------------------------------

    def _initial(self) -> dict[str, np.ndarray]:
        rng = np.random.default_rng(self.seed)
        padded = self.n + 2 * self.halo
        return {
            name: rng.uniform(0.5, 1.5, padded) for name in self.array_names
        }

    def build(
        self,
        machine: Machine,
        n_threads: int,
        plan: PrefetchPlan = AGGRESSIVE,
        reps: int | None = None,
    ) -> ParallelProgram:
        reps = reps or self.default_reps
        prog = ParallelProgram(machine, self.name)
        init = self._initial()
        padded = self.n + 2 * self.halo
        for name in self.array_names:
            prog.array(name, padded, init[name])
        if self.with_residual:
            prog.array("__res", 16 * n_threads)  # one line per thread slot

        chunks = static_chunks(self.n, n_threads)
        for spec in self.specs:
            fn = prog.kernel(spec.template(), plan)
            calls = []
            for start, count in chunks:
                if count:
                    calls.append(prog.make_call(fn, self.halo + start, count))
                else:
                    calls.append(None)
            prog.region(calls)
        if self.with_residual:
            rfn = prog.kernel(ReduceLoop(f"{self.name}_norm", src_a=self.specs[-1].dest), plan)
            res = prog.arrays["__res"]
            calls = []
            for tid, (start, count) in enumerate(chunks):
                if count:
                    calls.append(
                        prog.make_call(
                            rfn, self.halo + start, count,
                            raw={"result": res.addr(16 * tid)},
                        )
                    )
                else:
                    calls.append(None)
            prog.region(calls)
        prog.build(outer_reps=reps)
        return prog

    # -- verification -----------------------------------------------------------

    def reference(self, reps: int, n_threads: int = 1) -> dict[str, np.ndarray]:
        """Exact NumPy mirror of ``reps`` time steps."""
        arrays = self._initial()
        for _ in range(reps):
            for spec in self.specs:
                apply_stream(arrays, spec.template(), self.halo, self.n)
        return arrays

    def verify(self, prog: ParallelProgram, reps: int | None = None) -> bool:
        reps = reps or self.default_reps
        expect = self.reference(reps)
        for name in self.array_names:
            got = prog.f64(name)[: self.n + 2 * self.halo]
            if not np.allclose(got, expect[name], rtol=self.rtol, atol=1e-12):
                return False
        if self.with_residual:
            # every thread writes its chunk sum to slot tid*16, so the
            # slot sum equals the whole-grid sum regardless of n_threads
            res = prog.f64("__res")
            last = self.specs[-1].dest
            whole = expect[last][self.halo : self.halo + self.n].sum()
            if not np.isclose(res[::16].sum(), whole, rtol=1e-9):
                return False
        return True
