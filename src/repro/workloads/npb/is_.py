"""IS — integer sort kernel (structural analogue).

Bucket counting of integer keys: each thread histograms its key chunk
into a *private* count array (the standard optimized OpenMP IS), then
the per-thread histograms are merged with an integer sum loop.  Because
the histograms are private and the key stream is read-only, IS
generates almost no long-latency coherent misses — the paper excludes
IS (like EP) from its final results for exactly this reason, and this
analogue reproduces the property.
"""

from __future__ import annotations

import numpy as np

from ...compiler.kernels import HistogramLoop, IntSumLoop
from ...compiler.prefetch import AGGRESSIVE, PrefetchPlan
from ...cpu.machine import Machine
from ...errors import WorkloadError
from ...runtime.team import ParallelProgram, static_chunks
from .common import NpbBenchmark, register

__all__ = ["IS"]

_N_KEYS = 8192
_N_BINS = 256


class IsBenchmark(NpbBenchmark):
    name = "is"
    default_reps = 3

    def __init__(self) -> None:
        rng = np.random.default_rng(43)
        self.keys = rng.integers(0, _N_BINS, _N_KEYS).astype(np.int64)
        self.count = HistogramLoop("is_count", key="keys", cnt="hist")

    def build(
        self,
        machine: Machine,
        n_threads: int,
        plan: PrefetchPlan = AGGRESSIVE,
        reps: int | None = None,
    ) -> ParallelProgram:
        if n_threads > 8:
            raise WorkloadError("is: merge kernel supports at most 8 threads")
        reps = reps or self.default_reps
        prog = ParallelProgram(machine, self.name)
        prog.int_array("keys", _N_KEYS, self.keys)
        prog.int_array("hist", _N_BINS * n_threads)
        prog.int_array("total", _N_BINS)
        hist = prog.arrays["hist"]

        h_fn = prog.kernel(self.count, plan)
        chunks = static_chunks(_N_KEYS, n_threads)
        prog.region(
            [
                prog.make_call(
                    h_fn, start, count, raw={"hist": hist.addr(_N_BINS * tid)}
                )
                if count
                else None
                for tid, (start, count) in enumerate(chunks)
            ]
        )
        merge = IntSumLoop(
            "is_merge",
            dest="total",
            sources=tuple(("hist", _N_BINS * t) for t in range(n_threads)),
        )
        m_fn = prog.kernel(merge, plan)
        prog.region(
            [
                prog.make_call(m_fn, start, count) if count else None
                for start, count in static_chunks(_N_BINS, n_threads)
            ]
        )
        prog.build(outer_reps=reps)
        return prog

    def reference(self, reps: int, n_threads: int) -> tuple[np.ndarray, np.ndarray]:
        hist = np.zeros(_N_BINS * n_threads, dtype=np.int64)
        chunks = static_chunks(_N_KEYS, n_threads)
        for _ in range(reps):
            for tid, (start, count) in enumerate(chunks):
                part = np.bincount(
                    self.keys[start : start + count], minlength=_N_BINS
                )
                hist[_N_BINS * tid : _N_BINS * (tid + 1)] += part
        total = hist.reshape(n_threads, _N_BINS).sum(axis=0)
        return hist, total

    def verify(self, prog: ParallelProgram, reps: int | None = None) -> bool:
        reps = reps or self.default_reps
        hist, total = self.reference(reps, prog.n_threads)
        if not np.array_equal(prog.i64("hist")[: len(hist)], hist):
            return False
        return bool(np.array_equal(prog.i64("total")[:_N_BINS], total))


IS = register(IsBenchmark())
