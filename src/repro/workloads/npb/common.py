"""Common infrastructure for the NPB-like benchmark suite.

Each benchmark is a structural analogue of its NAS Parallel Benchmark
namesake (DESIGN.md §1): the same loop templates, array roles, sharing
patterns, and parallelization (OpenMP static chunking over the outer
dimension), at class-S-like scaled sizes.  All stencil kernels are
double-buffered (destination differs from shifted sources), so parallel
execution is deterministic and every benchmark carries an exact NumPy
reference mirror for verification.

``NpbBenchmark.build`` returns a ready :class:`ParallelProgram`;
``reference`` replays the same region sequence in NumPy; ``verify``
compares the simulated arrays against the mirror.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...compiler.kernels import StreamLoop, Term
from ...compiler.prefetch import AGGRESSIVE, PrefetchPlan
from ...cpu.machine import Machine
from ...errors import WorkloadError
from ...runtime.team import ParallelProgram

__all__ = ["NpbBenchmark", "BENCHMARKS", "register", "apply_stream", "grid_elems"]


def grid_elems(side: int) -> int:
    return side * side


def apply_stream(
    arrays: dict[str, np.ndarray],
    template: StreamLoop,
    start: int,
    n: int,
) -> None:
    """NumPy mirror of one StreamLoop region over ``[start, start+n)``.

    Shifted reads index into halo padding; the arrays are allocated with
    the same padding the simulated kernel sees.
    """
    acc = np.zeros(n)
    for term in template.terms:
        src = arrays[term.array]
        lo = start + term.shift
        acc = acc + term.coef * src[lo : lo + n]
    if template.scale is not None:
        acc = acc * arrays[template.scale][start : start + n]
    arrays[template.dest][start : start + n] = acc


def apply_gather(
    arrays: dict[str, np.ndarray],
    ptr: np.ndarray,
    col: np.ndarray,
    val: np.ndarray,
    x_name: str,
    y_name: str,
    rows: int,
    row0: int = 0,
) -> None:
    """NumPy mirror of one GatherLoop region (CSR SpMV accumulate)."""
    x = arrays[x_name]
    y = arrays[y_name]
    for i in range(row0, row0 + rows):
        lo, hi = int(ptr[i]), int(ptr[i + 1])
        y[i] += float(np.dot(val[lo:hi], x[col[lo:hi]]))


class NpbBenchmark:
    """Base class: subclasses define kernels and the region schedule."""

    name = "base"
    default_reps = 4
    #: verification tolerance (accumulated FP differences stay tiny
    #: because region order is deterministic)
    rtol = 1e-9

    def build(
        self,
        machine: Machine,
        n_threads: int,
        plan: PrefetchPlan = AGGRESSIVE,
        reps: int | None = None,
    ) -> ParallelProgram:
        raise NotImplementedError

    def verify(self, prog: ParallelProgram, reps: int | None = None) -> bool:
        raise NotImplementedError


#: Registry: benchmark name -> instance.
BENCHMARKS: dict[str, NpbBenchmark] = {}


def register(bench: NpbBenchmark) -> NpbBenchmark:
    if bench.name in BENCHMARKS:
        raise WorkloadError(f"benchmark {bench.name!r} already registered")
    BENCHMARKS[bench.name] = bench
    return bench


@dataclass(frozen=True)
class StencilSpec:
    """A named double-buffered stencil: dest <- linear combo of srcs."""

    name: str
    dest: str
    terms: tuple[Term, ...]
    scale: str | None = None

    def template(self) -> StreamLoop:
        return StreamLoop(self.name, dest=self.dest, terms=self.terms, scale=self.scale)
