"""MG — multigrid V-cycle kernel (structural analogue).

Three grid levels.  Going down: smooth (5-point stencil), residual,
restrict to the next coarser grid (a 3-point weighted gather — inter-
grid transfers are sparse matvecs, so they carry MG's ``br.wtop``
entries in Table 1).  At the bottom: smooth.  Going up: prolongate
(gather) and post-smooth.  The many per-level kernels give MG its
near-top static prefetch count in Table 1 (419 lfetch).

Coarse grids are small enough that several threads' chunks share cache
lines — MG mixes true stencil sharing with false sharing on the coarse
levels.
"""

from __future__ import annotations

import numpy as np

from ...compiler.kernels import GatherLoop, ReduceLoop, StreamLoop, Term
from ...compiler.prefetch import AGGRESSIVE, PrefetchPlan
from ...cpu.machine import Machine
from ...runtime.team import Call, ParallelProgram, static_chunks
from .common import NpbBenchmark, apply_stream, register

__all__ = ["MG"]

_SIDES = (32, 16, 8)


def _restriction_csr(n_fine: int, n_coarse: int, halo_fine: int):
    """coarse[i] += 0.25 f[2i-1] + 0.5 f[2i] + 0.25 f[2i+1] (halo-adjusted)."""
    ptr = np.arange(n_coarse + 1, dtype=np.int64) * 3
    col = np.empty(3 * n_coarse, dtype=np.int64)
    val = np.tile([0.25, 0.5, 0.25], n_coarse)
    for i in range(n_coarse):
        base = min(2 * i, n_fine - 2)
        col[3 * i : 3 * i + 3] = halo_fine + np.array([base - 1, base, base + 1])
    return ptr, col, val


def _prolongation_csr(n_coarse: int, n_fine: int, halo_coarse: int):
    """fine[i] += 0.5 c[i//2] + 0.5 c[i//2 + (i odd)] (halo-adjusted)."""
    ptr = np.arange(n_fine + 1, dtype=np.int64) * 2
    col = np.empty(2 * n_fine, dtype=np.int64)
    val = np.full(2 * n_fine, 0.05)  # small weight keeps values bounded
    for i in range(n_fine):
        a = min(i // 2, n_coarse - 1)
        b = min(a + (i & 1), n_coarse - 1)
        col[2 * i] = halo_coarse + a
        col[2 * i + 1] = halo_coarse + b
    return ptr, col, val


class MgBenchmark(NpbBenchmark):
    name = "mg"
    default_reps = 3

    def __init__(self) -> None:
        rng = np.random.default_rng(23)
        self.sides = _SIDES
        self.ns = [s * s for s in self.sides]
        self.halos = [s + 16 for s in self.sides]
        self.init: dict[str, np.ndarray] = {}
        for lvl, (n, h) in enumerate(zip(self.ns, self.halos)):
            self.init[f"u{lvl}"] = rng.uniform(0.5, 1.5, n + 2 * h)
            self.init[f"s{lvl}"] = np.zeros(n + 2 * h)
            self.init[f"r{lvl}"] = np.zeros(n + 2 * h)
        self.csr: dict[str, tuple[np.ndarray, np.ndarray, np.ndarray]] = {}
        for lvl in (0, 1):
            self.csr[f"restrict{lvl}"] = _restriction_csr(
                self.ns[lvl], self.ns[lvl + 1], self.halos[lvl]
            )
            self.csr[f"prolong{lvl}"] = _prolongation_csr(
                self.ns[lvl + 1], self.ns[lvl], self.halos[lvl + 1]
            )

        self.smooth: list[StreamLoop] = []
        self.resid: list[StreamLoop] = []
        self.post: list[StreamLoop] = []
        for lvl, side in enumerate(self.sides):
            self.smooth.append(
                StreamLoop(
                    f"mg_smooth{lvl}",
                    dest=f"s{lvl}",
                    terms=(
                        Term(f"u{lvl}", 0.5, 0),
                        Term(f"u{lvl}", 0.125, -1),
                        Term(f"u{lvl}", 0.125, 1),
                        Term(f"u{lvl}", 0.125, -side),
                        Term(f"u{lvl}", 0.125, side),
                    ),
                )
            )
            self.resid.append(
                StreamLoop(
                    f"mg_resid{lvl}",
                    dest=f"r{lvl}",
                    terms=(Term(f"u{lvl}", 1.0, 0), Term(f"s{lvl}", -0.9, 0)),
                )
            )
            self.post.append(
                StreamLoop(
                    f"mg_psinv{lvl}",
                    dest=f"u{lvl}",
                    terms=(Term(f"u{lvl}", 0.9, 0), Term(f"r{lvl}", 0.1, 0)),
                )
            )
        self.gathers = {
            "restrict0": GatherLoop("mg_rprj0", ptr="rp0", col="rc0", val="rv0", x="r0", y="r1"),
            "restrict1": GatherLoop("mg_rprj1", ptr="rp1", col="rc1", val="rv1", x="r1", y="r2"),
            "prolong1": GatherLoop("mg_interp1", ptr="pp1", col="pc1", val="pv1", x="r2", y="r1"),
            "prolong0": GatherLoop("mg_interp0", ptr="pp0", col="pc0", val="pv0", x="r1", y="r0"),
        }
        self._csr_names = {
            "restrict0": ("rp0", "rc0", "rv0"),
            "restrict1": ("rp1", "rc1", "rv1"),
            "prolong1": ("pp1", "pc1", "pv1"),
            "prolong0": ("pp0", "pc0", "pv0"),
        }
        self.norm = ReduceLoop("mg_norm", src_a="r0")

    # -- schedule: (kernel kind, level) per rep ------------------------------

    def _schedule(self):
        return [
            ("smooth", 0), ("resid", 0), ("gather", "restrict0"),
            ("smooth", 1), ("resid", 1), ("gather", "restrict1"),
            ("smooth", 2), ("resid", 2),
            ("gather", "prolong1"), ("post", 1),
            ("gather", "prolong0"), ("post", 0),
        ]

    def build(
        self,
        machine: Machine,
        n_threads: int,
        plan: PrefetchPlan = AGGRESSIVE,
        reps: int | None = None,
    ) -> ParallelProgram:
        reps = reps or self.default_reps
        prog = ParallelProgram(machine, self.name)
        for name, data in self.init.items():
            prog.array(name, len(data), data)
        for key, (pname, cname, vname) in self._csr_names.items():
            ptr, col, val = self.csr[key]
            prog.int_array(pname, len(ptr), ptr)
            prog.int_array(cname, len(col), col)
            prog.array(vname, len(val), val)
        prog.array("__res", 16 * n_threads)
        res = prog.arrays["__res"]

        fns = {
            ("smooth", lvl): prog.kernel(t, plan) for lvl, t in enumerate(self.smooth)
        }
        fns.update(
            {("resid", lvl): prog.kernel(t, plan) for lvl, t in enumerate(self.resid)}
        )
        fns.update(
            {("post", lvl): prog.kernel(t, plan) for lvl, t in enumerate(self.post)}
        )
        gfns = {key: prog.kernel(t, plan) for key, t in self.gathers.items()}
        norm_fn = prog.kernel(self.norm, plan)

        for kind, arg in self._schedule():
            if kind == "gather":
                key = str(arg)
                gfn = gfns[key]
                y_name = self.gathers[key].y
                y_lvl = int(y_name[1])
                rows = self.ns[y_lvl]
                halo_y = self.halos[y_lvl]
                calls: list[Call | None] = []
                for start, count in static_chunks(rows, n_threads):
                    if not count:
                        calls.append(None)
                        continue
                    call = prog.make_call(gfn, start, count)
                    args = list(call.args)
                    for i, spec in enumerate(gfn.params):
                        if spec.kind == "addr" and spec.array == y_name:
                            args[i] = prog.arrays[y_name].addr(halo_y + start)
                    calls.append(Call(gfn, tuple(args)))
                prog.region(calls)
            else:
                lvl = int(arg)
                fn = fns[(kind, lvl)]
                n, halo = self.ns[lvl], self.halos[lvl]
                prog.region(
                    [
                        prog.make_call(fn, halo + start, count) if count else None
                        for start, count in static_chunks(n, n_threads)
                    ]
                )
        prog.region(
            [
                prog.make_call(
                    norm_fn, self.halos[0] + start, count,
                    raw={"result": res.addr(16 * tid)},
                )
                if count
                else None
                for tid, (start, count) in enumerate(static_chunks(self.ns[0], n_threads))
            ]
        )
        prog.build(outer_reps=reps)
        return prog

    # -- mirror ------------------------------------------------------------------

    def reference(self, reps: int) -> dict[str, np.ndarray]:
        arrays = {k: v.copy() for k, v in self.init.items()}
        streams = {"smooth": self.smooth, "resid": self.resid, "post": self.post}
        for _ in range(reps):
            for kind, arg in self._schedule():
                if kind == "gather":
                    key = str(arg)
                    ptr, col, val = self.csr[key]
                    g = self.gathers[key]
                    y_lvl = int(g.y[1])
                    halo_y = self.halos[y_lvl]
                    y = arrays[g.y]
                    x = arrays[g.x]
                    for i in range(self.ns[y_lvl]):
                        lo, hi = int(ptr[i]), int(ptr[i + 1])
                        y[halo_y + i] += float(np.dot(val[lo:hi], x[col[lo:hi]]))
                else:
                    lvl = int(arg)
                    apply_stream(arrays, streams[kind][lvl], self.halos[lvl], self.ns[lvl])
        return arrays

    def verify(self, prog: ParallelProgram, reps: int | None = None) -> bool:
        reps = reps or self.default_reps
        expect = self.reference(reps)
        for name in self.init:
            got = prog.f64(name)[: len(expect[name])]
            if not np.allclose(got, expect[name], rtol=self.rtol):
                return False
        whole = expect["r0"][self.halos[0] : self.halos[0] + self.ns[0]].sum()
        return bool(np.isclose(prog.f64("__res")[::16].sum(), whole, rtol=1e-9))


MG = register(MgBenchmark())
