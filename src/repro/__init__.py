"""COBRA reproduction: adaptive runtime binary optimization for
multithreaded applications (Kim, Hsu, Yew — ICPP 2007), rebuilt on a
simulated Itanium-2-like multiprocessor.

Public API tour:

>>> from repro import itanium2_smp, Machine, build_daxpy, run_with_cobra
>>> machine = Machine(itanium2_smp(4, scale=4))
>>> prog = build_daxpy(machine, n_elems=2048, n_threads=4, outer_reps=20)
>>> result, report = run_with_cobra(prog, strategy="adaptive")
>>> report.deployments  # the traces COBRA rewrote and redirected

Subpackages:

- :mod:`repro.isa` — IA-64-like ISA: bundles, predication, rotation,
  ``lfetch`` hints, patchable binaries, assembler/disassembler;
- :mod:`repro.memory` — caches, MESI snooping bus, cc-NUMA directory;
- :mod:`repro.cpu` — interpreter cores, machines, time-ordered scheduler;
- :mod:`repro.hpm` — PMU counters, BTB, DEAR, perfmon-like sampling;
- :mod:`repro.runtime` — threads, OpenMP-style parallel programs;
- :mod:`repro.compiler` — kernel templates -> prefetch-aggressive code;
- :mod:`repro.core` — COBRA itself (the paper's contribution);
- :mod:`repro.workloads` — DAXPY and the NPB-like suite;
- :mod:`repro.analysis` — normalized metrics and paper-style tables;
- :mod:`repro.validate` — coherence invariant checker, differential
  (optimized vs baseline) execution harness, ISA round-trip checks.
"""

from .config import (
    CobraConfig,
    MachineConfig,
    itanium2_smp,
    sgi_altix,
)
from .cpu import Machine, Scheduler
from .core import Cobra, CobraReport, run_with_cobra
from .runtime import ParallelProgram, RunResult
from .validate import CoherenceChecker, DifferentialHarness
from .workloads import BENCHMARKS, REPORTED, build_daxpy, verify_daxpy, working_set_elems

__version__ = "1.0.0"

__all__ = [
    "MachineConfig",
    "CobraConfig",
    "itanium2_smp",
    "sgi_altix",
    "Machine",
    "Scheduler",
    "Cobra",
    "CobraReport",
    "run_with_cobra",
    "ParallelProgram",
    "RunResult",
    "CoherenceChecker",
    "DifferentialHarness",
    "BENCHMARKS",
    "REPORTED",
    "build_daxpy",
    "verify_daxpy",
    "working_set_elems",
    "__version__",
]
