"""Machine configurations for the simulated Itanium 2 platforms.

Two platforms from the paper are modeled:

* a 4-way Itanium 2 SMP server — private L2/L3 per CPU, one snooping
  front-side bus running a MESI (Illinois) protocol;
* an SGI Altix cc-NUMA system — 2-CPU nodes, each with a local bus and
  local memory, joined by a fat-tree interconnect with directory-based
  coherence and first-touch page placement.

Simulating full-size caches (L2 256 KB, L3 3 MB per CPU) against
class-S-scale working sets instruction-by-instruction in pure Python is
infeasible, so capacities and working sets are scaled down *together* by
``scale`` (default 16).  The cache line size is kept at the real 128
bytes so that prefetch-distance and false-sharing geometry match the
paper (e.g. 9-lines-ahead prefetch still covers 1152 bytes).

Latency constants mirror the bands measured in the paper: L3 hit is 12
cycles, memory loads 120–150 cycles, coherent misses exceed 180–200
cycles, and cc-NUMA remote/coherent accesses are substantially more
expensive than SMP ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

__all__ = [
    "CacheConfig",
    "BusConfig",
    "LatencyConfig",
    "FaultConfig",
    "FleetFaultConfig",
    "FleetAgentConfig",
    "PersistConfig",
    "ProfileDBConfig",
    "OverloadConfig",
    "GovernorConfig",
    "CobraConfig",
    "MachineConfig",
    "itanium2_smp",
    "sgi_altix",
    "DEFAULT_SCALE",
    "LINE_SIZE",
    "PAGE_SIZE",
]

#: Default capacity scale factor between real Itanium 2 caches and the
#: simulated ones (working sets are scaled by the same factor).
DEFAULT_SCALE = 16

#: L2/L3 cache line size in bytes (real Itanium 2 value; never scaled).
LINE_SIZE = 128

#: Simulated page size in bytes (used by first-touch NUMA placement).
#: Real Itanium Linux uses 16 KB pages; scaled like the caches.
PAGE_SIZE = 1024


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of one set-associative cache level."""

    size_bytes: int
    line_size: int = LINE_SIZE
    associativity: int = 8

    def __post_init__(self) -> None:
        if self.size_bytes % (self.line_size * self.associativity):
            raise ValueError(
                f"cache size {self.size_bytes} not divisible by "
                f"line_size*associativity = {self.line_size * self.associativity}"
            )

    @property
    def n_lines(self) -> int:
        return self.size_bytes // self.line_size

    @property
    def n_sets(self) -> int:
        return self.n_lines // self.associativity


@dataclass(frozen=True)
class BusConfig:
    """Timing of a shared bus (front-side bus or NUMA node bus).

    ``occupancy_data`` is the number of cycles a full cache-line data
    transfer holds the bus; ``occupancy_ctrl`` covers address-only
    transactions (upgrades/invalidates).  Queueing delay emerges from
    the busy-until bookkeeping in :class:`repro.memory.bus.SnoopBus`.
    """

    occupancy_data: int = 8
    occupancy_ctrl: int = 2


@dataclass(frozen=True)
class LatencyConfig:
    """Access *stall* penalties in cycles, per the paper's measured bands.

    An L2 hit is treated as fully covered by the software pipeline
    (stall 0); the other values are the extra cycles a load stalls
    beyond that, which is exactly the latency the DEAR reports and the
    paper's two-level filter thresholds on (L3 hit band = 12, memory
    120-150, coherent >180-200).
    """

    l2_hit: int = 0
    #: L3 hits are 12 cycles on Itanium 2, but modulo-scheduled loops
    #: hide nearly all of it (the compiler schedules loads a pipeline
    #: stage ahead); only a small residue stalls.  The DEAR still
    #: *reports* the architectural 12-cycle band — the first-level
    #: filter drops those events regardless.
    l3_hit: int = 2
    memory: int = 140            # local memory load (SMP: the only memory)
    remote_memory: int = 290     # cc-NUMA remote-node memory load
    cache_to_cache: int = 190    # SMP HITM (dirty line supplied by peer)
    remote_cache_to_cache: int = 400   # cc-NUMA HITM across the interconnect
    upgrade: int = 190           # S->M upgrade when other caches hold the line
    #                              (full invalidate round trip; the store
    #                              buffer drains it at store_factor)
    upgrade_quiet: int = 6       # S->M upgrade with no sharers (clean snoop)
    writeback: int = 8           # extra store-path cost when a bus WB is forced
    l2_writeback: int = 16       # dirty L2 -> L3 eviction drain cost
    store_factor: float = 0.5    # store misses drain via the store buffer
    interconnect_hop: int = 35   # per-hop cost in the Altix fat tree


@dataclass(frozen=True)
class FaultConfig:
    """Deterministic fault-injection plan (:mod:`repro.faults`).

    Attached to :attr:`CobraConfig.faults` (default ``None`` = injection
    fully disabled, zero overhead).  All draws come from one seeded PRNG,
    so a (workload, strategy, machine, seed) tuple replays the exact same
    fault schedule.  Rates are per *opportunity*: ``sample_rate`` per
    delivered HPM sample, ``patch_rate`` per trace deployment attempt,
    ``loop_rate`` per optimizer wake point.  ``kinds`` restricts the
    schedule to a subset of fault kinds (``None`` = all).
    """

    seed: int = 0
    sample_rate: float = 0.02
    patch_rate: float = 0.2
    loop_rate: float = 0.05
    kinds: tuple[str, ...] | None = None
    #: kill the run at the Nth durable persistence write (1-based);
    #: ``None`` disables crash injection.  Only meaningful when a
    #: checkpoint store is attached (:attr:`CobraConfig.persist`).
    crash_write: int | None = None
    #: ``None`` = die at the boundary, before the write lands; ``k`` =
    #: make the first ``k`` bytes durable first (a torn record/temp)
    crash_torn_bytes: int | None = None

    def __post_init__(self) -> None:
        for name in ("sample_rate", "patch_rate", "loop_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if self.seed < 0:
            # seeds name fault schedules in ledgers, CI matrices, and
            # CLI replays; negatives have no meaning there
            raise ValueError(f"seed must be a non-negative integer, got {self.seed}")
        if self.crash_write is not None and self.crash_write < 1:
            raise ValueError(f"crash_write must be >= 1, got {self.crash_write}")
        if self.crash_torn_bytes is not None and self.crash_torn_bytes < 0:
            raise ValueError(
                f"crash_torn_bytes must be >= 0, got {self.crash_torn_bytes}"
            )


@dataclass(frozen=True)
class FleetFaultConfig:
    """Deterministic transport fault plan for fleet mode (:mod:`repro.fleet`).

    Every frame an agent sends to the daemon is a fault opportunity:
    with probability ``frame_rate`` one fault kind is drawn (uniformly
    from ``kinds``, default all of them) from a PRNG seeded by
    ``(seed, instance)``, so a fleet schedule replays exactly regardless
    of worker count.  ``partition_rate`` is drawn once per instance and
    round — a partitioned agent cannot reach the daemon at all and
    degrades to local-only optimization until it rejoins at the round
    boundary.  ``daemon_crash_batch`` kills the daemon after the Nth
    accepted batch (1-based); it must recover from its journal+snapshot
    store and resume mid-fleet.
    """

    seed: int = 0
    #: per-frame fault probability (drop/dup/reorder/delay/corrupt/poison)
    frame_rate: float = 0.0
    #: restrict the schedule to a subset of frame fault kinds (None = all)
    kinds: tuple[str, ...] | None = None
    #: per (instance, round) probability of a full network partition
    partition_rate: float = 0.0
    #: crash the daemon after the Nth accepted batch; None disables
    daemon_crash_batch: int | None = None
    #: send attempts per frame before the agent gives up (rejoin merge
    #: still reconciles the data)
    max_attempts: int = 6
    #: first retransmit backoff, in virtual transport ticks
    backoff_base: int = 4
    #: backoff ceiling — no delay in the schedule ever exceeds this
    backoff_cap: int = 512

    def __post_init__(self) -> None:
        for name in ("frame_rate", "partition_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if self.seed < 0:
            raise ValueError(f"seed must be a non-negative integer, got {self.seed}")
        if self.daemon_crash_batch is not None and self.daemon_crash_batch < 1:
            raise ValueError(
                f"daemon_crash_batch must be >= 1, got {self.daemon_crash_batch}"
            )
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.backoff_base < 1:
            raise ValueError(f"backoff_base must be >= 1, got {self.backoff_base}")
        if self.backoff_cap < self.backoff_base:
            raise ValueError(
                f"backoff_cap must be >= backoff_base, got {self.backoff_cap}"
            )


@dataclass(frozen=True)
class FleetAgentConfig:
    """Per-instance fleet attachment (:mod:`repro.fleet`).

    Attached to :attr:`CobraConfig.fleet` (default ``None`` = solo run,
    zero overhead, bit-identical behaviour).  The agent side is
    deliberately passive: an outbox records one telemetry batch per
    optimizer wake, and a daemon-pushed ``entry`` (a profile-database
    entry whose decisions passed the quorum gate) warm-starts the run
    through the existing ``seed_from_profile`` path.  A ``degraded``
    agent is partitioned from the daemon: it queues frames locally,
    optimizes on local evidence only, and reconciles via the profile
    merge when it rejoins.
    """

    #: stable instance identifier, e.g. ``"i03"``
    instance: str
    #: fleet size, echoed into the instance report
    instances: int = 1
    #: evidence quorum the daemon applies before publishing a decision
    quorum: int = 1
    #: quorum-published decisions at dispatch time (daemon echo)
    published: int = 0
    #: quarantined streams at dispatch time (daemon echo)
    quarantined: int = 0
    #: partitioned from the daemon: local-only optimization
    degraded: bool = False
    #: daemon-pushed profile entry (None = cold start)
    entry: dict | None = None
    #: optimizer wakes folded into each telemetry batch
    flush_interval: int = 1

    def __post_init__(self) -> None:
        if not self.instance:
            raise ValueError("instance id must be a non-empty string")
        if self.instances < 1:
            raise ValueError(f"instances must be >= 1, got {self.instances}")
        if self.quorum < 1:
            raise ValueError(f"quorum must be >= 1, got {self.quorum}")
        if self.quorum > self.instances:
            raise ValueError(
                f"quorum ({self.quorum}) cannot exceed fleet size ({self.instances})"
            )
        if self.flush_interval < 1:
            raise ValueError(
                f"flush_interval must be >= 1, got {self.flush_interval}"
            )


@dataclass(frozen=True)
class PersistConfig:
    """Checkpoint store attachment (:mod:`repro.persist`).

    Attached to :attr:`CobraConfig.persist` (default ``None`` =
    persistence fully disabled, zero overhead, bit-identical runs).
    Exactly one of ``directory`` (a real filesystem checkpoint
    directory) or ``disk`` (an injectable
    :class:`~repro.persist.journal.Disk`, for deterministic tests and
    the crash sweeps) must be provided.
    """

    #: checkpoint directory on the real filesystem
    directory: str | None = None
    #: injectable disk; overrides ``directory`` when set
    disk: object | None = None
    #: window (wake) records between automatic snapshots
    snapshot_interval: int = 4
    #: newest snapshots retained by pruning
    snapshots_kept: int = 3
    #: recover and warm-start from existing state (``False`` wipes the
    #: store and starts cold)
    resume: bool = True
    #: workload descriptor journaled for ``repro resume`` (None = keep
    #: whatever descriptor the store already holds)
    meta: dict | None = None

    def __post_init__(self) -> None:
        if self.directory is None and self.disk is None:
            raise ValueError("PersistConfig needs a directory or an injectable disk")
        if self.snapshot_interval < 1:
            raise ValueError(
                f"snapshot_interval must be >= 1, got {self.snapshot_interval}"
            )
        if self.snapshots_kept < 1:
            raise ValueError(f"snapshots_kept must be >= 1, got {self.snapshots_kept}")


@dataclass(frozen=True)
class ProfileDBConfig:
    """Cross-run profile database attachment (:mod:`repro.persist`).

    Attached to :attr:`CobraConfig.profile_db` (default ``None`` = no
    database, zero overhead, bit-identical runs).  Exactly one of
    ``path`` (a database *file* on the real filesystem) or ``disk`` (an
    injectable :class:`~repro.persist.journal.Disk`, for deterministic
    tests and the fuzz corruption cells) must be provided.  Unlike the
    checkpoint store, the database outlives any single run and is keyed
    by binary digest + machine descriptor + strategy, so one file can
    serve many workloads and machines.
    """

    #: database file path on the real filesystem
    path: str | None = None
    #: injectable disk; overrides ``path`` when set
    disk: object | None = None
    #: warm-start from a matching entry when one exists
    seed: bool = True
    #: fold this run's profile back into the database at stop
    record: bool = True

    def __post_init__(self) -> None:
        if self.path is None and self.disk is None:
            raise ValueError("ProfileDBConfig needs a path or an injectable disk")


@dataclass(frozen=True)
class OverloadConfig:
    """Deterministic overload-injection plan (:mod:`repro.governor`).

    Attached to :attr:`GovernorConfig.overload` (default ``None`` = no
    injection).  All draws come from one PRNG seeded by ``seed`` —
    *separate* from the fault injector's PRNG, so arming overload never
    perturbs an armed fault schedule.  Rates are per optimizer wake:
    ``shrink_rate`` multiplies the trace-cache budget by
    ``shrink_factor`` (clamped at the governor's floor), ``flood_rate``
    makes monitors deliver ``flood_factor`` copies of each sample for
    ``flood_windows`` wakes, ``disk_rate`` charges synthetic slow-disk
    latency pressure, and ``storm_rate`` charges synthetic daemon
    ingest-queue pressure.  ``max_events`` caps total injections (0 =
    unlimited) so a schedule quiesces and the ladder can recover.
    """

    seed: int = 0
    #: per-wake probability of a mid-run trace-cache budget shrink
    shrink_rate: float = 0.0
    #: per-wake probability of starting an HPM sample flood
    flood_rate: float = 0.0
    #: per-wake probability of a slow-disk latency spike
    disk_rate: float = 0.0
    #: per-wake probability of a daemon ingest storm
    storm_rate: float = 0.0
    #: budget multiplier applied by each shrink event
    shrink_factor: float = 0.5
    #: sample multiplication during a flood (2 = every sample doubled)
    flood_factor: int = 3
    #: optimizer wakes a flood lasts
    flood_windows: int = 2
    #: total injection cap across all categories (0 = unlimited)
    max_events: int = 0

    def __post_init__(self) -> None:
        for name in ("shrink_rate", "flood_rate", "disk_rate", "storm_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if self.seed < 0:
            raise ValueError(f"seed must be a non-negative integer, got {self.seed}")
        if not 0.0 < self.shrink_factor < 1.0:
            raise ValueError(
                f"shrink_factor must be in (0, 1), got {self.shrink_factor}"
            )
        if self.flood_factor < 2:
            raise ValueError(f"flood_factor must be >= 2, got {self.flood_factor}")
        if self.flood_windows < 1:
            raise ValueError(f"flood_windows must be >= 1, got {self.flood_windows}")
        if self.max_events < 0:
            raise ValueError(f"max_events must be >= 0, got {self.max_events}")


@dataclass(frozen=True)
class GovernorConfig:
    """Resource-governor attachment (:mod:`repro.governor`).

    Attached to :attr:`CobraConfig.governor` (default ``None`` = no
    governor, zero overhead, bit-identical runs).  The governor puts an
    explicit budget on every structure that would otherwise grow without
    bound — trace-cache bundles (cold-first eviction instead of
    permanent refusal), HPM sample-queue depth (drop-oldest with ledger
    accounting), profile-database entries (cold-key compaction at
    save), and the fleet outbox — and drives a five-rung
    graceful-degradation ladder (``full → no-new-compiles →
    monitor-only → frozen → off``) with hysteresis: escalate one rung
    per wake while pressure is at or above ``escalate_pressure``,
    recover one rung only after ``recovery_windows`` consecutive wakes
    at or below ``recover_pressure``.  Degradation only ever forgoes
    optimization; output semantics never change.
    """

    #: trace-cache bundle budget (``None`` = the cache's own capacity;
    #: eviction-instead-of-refusal still applies)
    trace_cache_budget: int | None = None
    #: per-monitor sample-queue depth before drop-oldest backpressure
    sample_queue_depth: int = 4096
    #: profile-database entry count kept by compaction at save
    profile_db_entries: int = 256
    #: fleet-outbox window batches kept before shedding the oldest
    outbox_batches: int = 1024
    #: overload shrink events never push the trace budget below this
    budget_floor: int = 64
    #: per-core compiled-trace footprint (bundles) before the governor
    #: evicts cold trace-tree nodes (``None`` = unbounded)
    jit_node_budget: int | None = 512
    #: pressure at or above this escalates one rung per wake
    escalate_pressure: float = 0.85
    #: pressure at or below this counts toward recovery
    recover_pressure: float = 0.60
    #: consecutive calm wakes required before recovering one rung
    recovery_windows: int = 3
    #: seeded overload-injection plan (``None`` = no injection)
    overload: OverloadConfig | None = None

    def __post_init__(self) -> None:
        if self.trace_cache_budget is not None and self.trace_cache_budget < 1:
            raise ValueError(
                f"trace_cache_budget must be >= 1, got {self.trace_cache_budget}"
            )
        if self.jit_node_budget is not None and self.jit_node_budget < 1:
            raise ValueError(
                f"jit_node_budget must be >= 1, got {self.jit_node_budget}"
            )
        for name in ("sample_queue_depth", "profile_db_entries",
                     "outbox_batches", "budget_floor", "recovery_windows"):
            value = getattr(self, name)
            if value < 1:
                raise ValueError(f"{name} must be >= 1, got {value}")
        for name in ("escalate_pressure", "recover_pressure"):
            value = getattr(self, name)
            if not 0.0 < value <= 1.0:
                raise ValueError(f"{name} must be in (0, 1], got {value}")
        if self.recover_pressure >= self.escalate_pressure:
            # the hysteresis band must be non-empty or the ladder would
            # oscillate on a pressure level sitting exactly at the edge
            raise ValueError(
                f"recover_pressure ({self.recover_pressure}) must be below "
                f"escalate_pressure ({self.escalate_pressure})"
            )


@dataclass(frozen=True)
class CobraConfig:
    """COBRA runtime parameters (sampling, filtering, policy)."""

    #: Instructions between HPM samples on each monitored thread.
    sampling_interval: int = 2000
    #: Cycles charged to the monitored thread per delivered sample
    #: (models the perfmon interrupt + copy to the User Sampling Buffer).
    sample_overhead_cycles: int = 40
    #: Optimizer wake-up period, in aggregate retired instructions.
    optimize_interval: int = 40_000
    #: First-level DEAR filter: drop events at or below the L3-hit band.
    dear_latency_floor: int = 12
    #: Second-level DEAR filter: latency above this is "coherent miss".
    coherent_latency_threshold: int = 180
    #: Minimum fraction of bus transactions that must be coherent events
    #: before the coherence optimizations are considered.
    coherent_ratio_threshold: float = 0.10
    #: Minimum filtered-DEAR samples attributed to a loop before the
    #: loop's prefetches are rewritten.
    min_loop_samples: int = 4
    #: Share of a loop's filtered samples that must be coherent-latency
    #: before choosing noprefetch over prefetch.excl.
    noprefetch_coherent_share: float = 0.5
    #: Trace cache capacity, in bundles.
    trace_cache_bundles: int = 4096
    #: Re-adaptation: revert a rewrite whose observed benefit is negative.
    enable_rollback: bool = True
    #: Invariant checking (:mod:`repro.validate`): ``"off"`` (default),
    #: ``"record"`` accumulates violations on the COBRA report, and
    #: ``"strict"`` raises :class:`~repro.errors.InvariantViolation` on
    #: the first broken invariant.  The ``REPRO_VALIDATE`` environment
    #: variable overrides this at :class:`~repro.core.framework.Cobra`
    #: construction (so CI can run any example under strict checking).
    validate: str = "off"
    #: Seeded fault-injection plan (:mod:`repro.faults`); ``None``
    #: disables injection entirely.  The ``REPRO_FAULTS`` environment
    #: variable (an integer seed) overrides this at ``Cobra``
    #: construction with a default-rate plan.
    faults: FaultConfig | None = None
    #: Crash-consistent checkpoint store (:mod:`repro.persist`);
    #: ``None`` disables persistence entirely.  The ``REPRO_CHECKPOINT``
    #: environment variable (a checkpoint directory path) overrides
    #: this at ``Cobra`` construction.
    persist: PersistConfig | None = None
    #: Cross-run profile database (:mod:`repro.persist.profiledb`);
    #: ``None`` disables it entirely.  The ``REPRO_PROFILE_DB``
    #: environment variable (a database file path) overrides this at
    #: ``Cobra`` construction.
    profile_db: ProfileDBConfig | None = None
    #: Fleet-mode agent attachment (:mod:`repro.fleet`); ``None`` = solo
    #: run.  Set by the fleet harness, never from the environment: the
    #: daemon echo inside it is meaningless outside a fleet dispatch.
    fleet: FleetAgentConfig | None = None
    #: Resource governor (:mod:`repro.governor`); ``None`` disables it
    #: entirely.  The ``REPRO_GOVERNOR`` environment variable (``"1"``
    #: arms a default-budget governor, ``"0"`` leaves it off) overrides
    #: this at ``Cobra`` construction.
    governor: GovernorConfig | None = None
    #: Optimizer watchdog: after this many fault strikes (failed
    #: deployments, monitor deaths, quarantine surges, recorded
    #: invariant violations) the optimizer reverts every active
    #: deployment and drops to monitor-only degraded mode.
    fault_escalation_threshold: int = 8


@dataclass(frozen=True)
class MachineConfig:
    """Complete description of one simulated platform."""

    name: str
    n_cpus: int
    cpus_per_node: int
    l2: CacheConfig
    l3: CacheConfig
    bus: BusConfig = field(default_factory=BusConfig)
    latency: LatencyConfig = field(default_factory=LatencyConfig)
    cobra: CobraConfig = field(default_factory=CobraConfig)
    scale: int = DEFAULT_SCALE

    def __post_init__(self) -> None:
        if self.n_cpus < 1:
            raise ValueError("n_cpus must be >= 1")
        if self.n_cpus % self.cpus_per_node:
            raise ValueError("n_cpus must be a multiple of cpus_per_node")

    @property
    def n_nodes(self) -> int:
        return self.n_cpus // self.cpus_per_node

    @property
    def is_numa(self) -> bool:
        return self.n_nodes > 1

    def with_cobra(self, **kwargs: object) -> "MachineConfig":
        """Return a copy with selected COBRA parameters overridden."""
        return replace(self, cobra=replace(self.cobra, **kwargs))


def _scaled_cache(real_bytes: int, scale: int, assoc: int) -> CacheConfig:
    size = real_bytes // scale
    # keep the geometry legal after scaling
    while size % (LINE_SIZE * assoc):
        assoc //= 2
        if assoc == 0:
            raise ValueError(f"cannot scale cache of {real_bytes} B by {scale}")
    return CacheConfig(size_bytes=size, line_size=LINE_SIZE, associativity=assoc)


def itanium2_smp(n_cpus: int = 4, scale: int = DEFAULT_SCALE) -> MachineConfig:
    """The paper's 4-way Itanium 2 SMP server (6.4 GB/s FSB, MESI)."""
    return MachineConfig(
        name=f"itanium2-smp-{n_cpus}",
        n_cpus=n_cpus,
        cpus_per_node=n_cpus,  # single bus, single memory: one "node"
        l2=_scaled_cache(256 * 1024, scale, 8),
        l3=_scaled_cache(3 * 1024 * 1024, scale, 12),
        scale=scale,
    )


def sgi_altix(n_cpus: int = 8, scale: int = DEFAULT_SCALE) -> MachineConfig:
    """The paper's SGI Altix cc-NUMA system (2-CPU nodes, fat tree)."""
    return MachineConfig(
        name=f"sgi-altix-{n_cpus}",
        n_cpus=n_cpus,
        cpus_per_node=2,
        l2=_scaled_cache(256 * 1024, scale, 8),
        l3=_scaled_cache(3 * 1024 * 1024, scale, 12),
        latency=LatencyConfig(memory=150),
        scale=scale,
    )
