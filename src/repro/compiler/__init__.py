"""The static compiler: kernel templates -> prefetch-aggressive binaries."""

from .codegen import Emitter, Function, KernelCompiler, ParamSpec
from .kernels import (
    ComputeLoop,
    GatherLoop,
    HistogramLoop,
    IntSumLoop,
    KernelTemplate,
    ReduceLoop,
    StreamLoop,
    Term,
)
from .prefetch import AGGRESSIVE, NO_PREFETCH, PrefetchPlan

__all__ = [
    "Emitter",
    "Function",
    "KernelCompiler",
    "ParamSpec",
    "StreamLoop",
    "ReduceLoop",
    "GatherLoop",
    "HistogramLoop",
    "ComputeLoop",
    "IntSumLoop",
    "KernelTemplate",
    "Term",
    "PrefetchPlan",
    "AGGRESSIVE",
    "NO_PREFETCH",
]
