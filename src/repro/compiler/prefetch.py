"""Prefetch planning — the "aggressive compiler prefetching" the paper
optimizes away at runtime.

The defaults mirror what the Intel icc 9.1 output in the paper's
Figure 2 does for DAXPY:

* in the loop, one ``lfetch`` per iteration targeting ``distance_lines``
  (9) cache lines ahead of the current references, rotating across all
  streams via the rotating register queue;
* before the loop, ``prologue_per_stream`` prefetches covering each
  stream's first cache lines (Figure 2 shows six for two streams).

A plan is *static* compiler policy.  COBRA's whole point is that the
right plan depends on runtime behaviour, so the compiled binary always
uses the aggressive default and the runtime optimizer rewrites it.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import LINE_SIZE
from ..errors import CompilerError

__all__ = ["PrefetchPlan", "AGGRESSIVE", "NO_PREFETCH"]


@dataclass(frozen=True)
class PrefetchPlan:
    """Static data-prefetch policy for one compilation."""

    enabled: bool = True
    distance_lines: int = 9      # lines ahead of the current reference
    #: Prologue lfetches covering the head of the destination chunk.
    #: None -> cover the full prefetch distance (our compiler closes the
    #: icc coverage hole; the paper's Figure 2 shows six — pass 6 to
    #: render the exact icc shape).
    prologue_per_stream: int | None = None
    #: §2 alternative 1: "use conditional prefetches to nullify the
    #: prefetches if the addresses are outside the intended range.
    #: However, conditional prefetch generation is more expensive" —
    #: one more compare and predicate per stream per iteration.
    conditional: bool = False
    #: §2 alternative 2: "generate multi-version code to select the
    #: noprefetch version when the iteration count is small".
    multiversion: bool = False
    #: Iteration-count cutoff for the multi-version dispatch (None ->
    #: twice the prefetch distance in elements).
    multiversion_threshold: int | None = None
    hint: str | None = "nt1"
    excl: bool = False           # static .excl (normally a COBRA rewrite)

    def __post_init__(self) -> None:
        if self.distance_lines < 1:
            raise CompilerError("prefetch distance must be >= 1 line")
        if self.prologue_per_stream is not None and self.prologue_per_stream < 0:
            raise CompilerError("prologue count must be >= 0")
        if self.hint not in (None, "nt1", "nt2", "nta"):
            raise CompilerError(f"bad prefetch hint {self.hint!r}")

    @property
    def distance_bytes(self) -> int:
        return self.distance_lines * LINE_SIZE

    @property
    def prologue_count(self) -> int:
        if self.prologue_per_stream is None:
            return self.distance_lines
        return self.prologue_per_stream

    @property
    def multiversion_cutoff(self) -> int:
        if self.multiversion_threshold is not None:
            return self.multiversion_threshold
        return 2 * self.distance_lines * (LINE_SIZE // 8)


#: icc -O2/-O3 default: prefetch on, 9 lines ahead (paper Figure 2).
AGGRESSIVE = PrefetchPlan()

#: Compile-time noprefetch (the paper's hand-made comparison binary,
#: where every lfetch is replaced by a NOP before execution).
NO_PREFETCH = PrefetchPlan(enabled=False)
