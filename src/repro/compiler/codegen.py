"""Code generation: kernel templates -> IA-64-like machine code.

Calling convention (all templates):

* parameters in ``r16..r23`` — an iteration count first, then one
  address per load/store stream (see each ``Function``'s ``params``);
* kernels clobber ``r2..r15``, rotating GRs, ``f8..f31``, rotating FRs,
  ``p6..p9``, rotating predicates, and LC/EC;
* return via ``br.ret`` (the driver stub calls with ``br.call``).

:class:`StreamLoop` lowers to a three-stage modulo-scheduled loop in
the style of the paper's Figure 2: stage p16 loads (and runs the
rotating prefetch queue), stage p17 computes, stage p18 stores, with
``br.ctop`` driving LC/EC and the register rotation.  The prefetch
queue reads logical ``r(32+k)`` and re-queues at logical ``r32`` with
an ``8*k``-byte advance, exactly the Figure-2 ``lfetch [r43]`` /
``add r41=16,r43`` idiom generalized to ``k`` streams.

Bundling follows IA-64 dispersal limits loosely: at most two memory
ops per bundle, branches end a bundle in its last slot.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import LINE_SIZE
from ..errors import CompilerError
from ..isa.binary import BinaryImage
from ..isa.bundle import Bundle
from ..isa.instructions import Instruction, Op, nop
from ..memory.dram import MemorySystem
from .kernels import (
    ComputeLoop,
    GatherLoop,
    HistogramLoop,
    IntSumLoop,
    KernelTemplate,
    ReduceLoop,
    StreamLoop,
    Term,
)
from .prefetch import AGGRESSIVE, PrefetchPlan

__all__ = ["ParamSpec", "Function", "KernelCompiler", "Emitter"]

_PARAM_BASE = 16
_MAX_PARAMS = 12  # r16..r27; r2..r15 stay scratch


@dataclass(frozen=True)
class ParamSpec:
    """One register parameter of a compiled kernel function.

    ``kind`` is ``"count"`` (iterations/rows), ``"addr"`` (byte address
    of element ``chunk_start + shift`` of ``array``), or ``"raw"``
    (precomputed value, e.g. an array base).
    """

    reg: int
    kind: str
    array: str | None = None
    shift: int = 0


@dataclass
class Function:
    """A compiled kernel: entry point, params, and rewrite targets."""

    name: str
    entry: int
    region: tuple[int, int]
    params: list[ParamSpec]
    loop_head: int
    lfetch_sites: list[tuple[int, int]] = field(default_factory=list)

    @property
    def n_lfetch(self) -> int:
        return len(self.lfetch_sites)


class Emitter:
    """Accumulates instructions and packs them into bundles."""

    def __init__(self, image: BinaryImage) -> None:
        self.image = image
        self._pending: list[Instruction] = []

    def emit(self, instr: Instruction) -> None:
        self._pending.append(instr)
        if instr.is_branch or instr.op is Op.HALT:
            self.flush()

    def label(self, name: str) -> int:
        self.flush()
        return self.image.mark(name)

    def here(self) -> int:
        self.flush()
        return self.image.here()

    def flush(self) -> None:
        pending = self._pending
        while pending:
            slots: list[Instruction] = []
            mem_ops = 0
            while pending and len(slots) < 3:
                head = pending[0]
                if head.is_memory and mem_ops == 2:
                    break
                if head.is_branch or head.op is Op.HALT:
                    # branches (and halt) go in the last slot of their bundle
                    while len(slots) < 2:
                        slots.append(nop("M" if not slots else "I"))
                    slots.append(pending.pop(0))
                    break
                if head.is_memory:
                    mem_ops += 1
                slots.append(pending.pop(0))
            while len(slots) < 3:
                slots.append(nop("I"))
            self.image.append(Bundle(slots))


def _sor_for(k: int) -> int:
    """Rotating-region size covering logical r32..r(32+k), rounded to 8."""
    need = k + 1
    return ((need + 7) // 8) * 8


class KernelCompiler:
    """Compiles kernel templates into a shared binary image."""

    def __init__(self, image: BinaryImage, mem: MemorySystem) -> None:
        self.image = image
        self.mem = mem
        self.functions: dict[str, Function] = {}

    # -- public API ---------------------------------------------------------

    def compile(self, template: KernelTemplate, plan: PrefetchPlan = AGGRESSIVE) -> Function:
        if template.name in self.functions:
            raise CompilerError(f"kernel {template.name!r} already compiled")
        if isinstance(template, StreamLoop):
            fn = self._compile_stream(template, plan)
        elif isinstance(template, ReduceLoop):
            fn = self._compile_reduce(template, plan)
        elif isinstance(template, GatherLoop):
            fn = self._compile_gather(template, plan)
        elif isinstance(template, HistogramLoop):
            fn = self._compile_histogram(template, plan)
        elif isinstance(template, IntSumLoop):
            fn = self._compile_intsum(template, plan)
        elif isinstance(template, ComputeLoop):
            fn = self._compile_compute(template)
        else:  # pragma: no cover - defensive
            raise CompilerError(f"unknown template {template!r}")
        self.functions[template.name] = fn
        return fn

    def link(self) -> None:
        self.image.link()
        # record lfetch sites post-link (addresses are final at append time,
        # but collecting here keeps one code path)
        for fn in self.functions.values():
            fn.lfetch_sites = self.image.find_ops(Op.LFETCH, fn.region)

    # -- shared helpers ----------------------------------------------------------

    def _const_pool(self, name: str, values: list[float]) -> int:
        alloc = self.mem.alloc(f"__const_{name}", max(len(values), 1) * 8)
        view = self.mem.view_f64(alloc)
        for i, v in enumerate(values):
            view[i] = v
        return alloc.base

    def _emit_pool_loads(self, em: Emitter, pool: int, n: int, first_fr: int = 8) -> None:
        em.emit(Instruction(Op.MOVI, r1=14, imm=pool))
        for j in range(n):
            em.emit(Instruction(Op.LDFD, r1=first_fr + j, r2=14, imm=8, unit="M"))

    def _emit_prologue_prefetch(
        self, em: Emitter, plan: PrefetchPlan, addr_regs: list[int]
    ) -> None:
        """Per-stream prologue lfetches covering the first cache lines."""
        if not plan.enabled or plan.prologue_count == 0:
            return
        for reg in addr_regs:
            em.emit(Instruction(Op.MOV, r1=2, r2=reg))
            for _ in range(plan.prologue_count):
                em.emit(
                    Instruction(
                        Op.LFETCH, r2=2, imm=LINE_SIZE, hint=plan.hint,
                        excl=plan.excl, unit="M",
                    )
                )

    def _loop_count_setup(self, em: Emitter, count_reg: int) -> None:
        """LC = count - 1 (count >= 1 is the caller's contract)."""
        em.emit(Instruction(Op.ADDI, r1=15, r2=count_reg, imm=-1))
        em.emit(Instruction(Op.MOV_LC_REG, r2=15))

    # -- StreamLoop -----------------------------------------------------------------

    def _compile_stream(self, template: StreamLoop, plan: PrefetchPlan) -> Function:
        em = Emitter(self.image)
        name = template.name

        # distinct (array, shift) load streams, in first-use order
        load_streams: list[tuple[str, int]] = []
        for term in template.terms:
            key = (term.array, term.shift)
            if key not in load_streams:
                load_streams.append(key)
        if template.scale is not None and (template.scale, 0) not in load_streams:
            load_streams.append((template.scale, 0))

        params: list[ParamSpec] = [ParamSpec(_PARAM_BASE, "count")]
        params.append(ParamSpec(_PARAM_BASE + 1, "addr", template.dest, 0))
        for j, (array, shift) in enumerate(load_streams):
            params.append(ParamSpec(_PARAM_BASE + 2 + j, "addr", array, shift))
        if len(params) > _MAX_PARAMS:
            raise CompilerError(f"{name}: too many streams for the calling convention")
        dest_reg = _PARAM_BASE + 1
        load_regs = {ls: _PARAM_BASE + 2 + j for j, ls in enumerate(load_streams)}

        # prefetch targets: one stream per distinct array (first use), dest last
        pf_arrays: dict[str, int] = {}
        for (array, _shift), reg in load_regs.items():
            pf_arrays.setdefault(array, reg)
        pf_arrays.setdefault(template.dest, dest_reg)
        pf_regs = list(pf_arrays.values())

        entry = em.label(name)

        coefs = [t.coef for t in template.terms]
        pool = self._const_pool(name, coefs)
        self._emit_pool_loads(em, pool, len(coefs))

        if plan.multiversion and plan.enabled:
            # §2: "generate multi-version code to select the noprefetch
            # version when the iteration count is small"
            em.emit(
                Instruction(Op.CMPI_LT, r1=6, r2=7, r3=_PARAM_BASE,
                            imm=plan.multiversion_cutoff)
            )
            em.emit(Instruction(Op.BR_COND, qp=6, label=f".{name}_small", unit="B"))
            loop_head = self._emit_stream_body(
                em, template, plan, name, "", load_streams, load_regs, dest_reg, pf_regs
            )
            em.label(f".{name}_small")
            self._emit_stream_body(
                em, template, PrefetchPlan(enabled=False), name, "_small",
                load_streams, load_regs, dest_reg, pf_regs,
            )
        else:
            loop_head = self._emit_stream_body(
                em, template, plan, name, "", load_streams, load_regs, dest_reg, pf_regs
            )
        end = em.here()
        self.image.mark_region(name, entry, end)
        return Function(name, entry, (entry, end), params, loop_head)

    def _emit_stream_body(
        self,
        em: Emitter,
        template: StreamLoop,
        plan: PrefetchPlan,
        name: str,
        suffix: str,
        load_streams: list[tuple[str, int]],
        load_regs: dict[tuple[str, int], int],
        dest_reg: int,
        pf_regs: list[int],
    ) -> int:
        """One software-pipelined loop body (ends with br.ret)."""
        k = len(pf_regs)

        # conditional prefetching (§2): per-stream end-of-chunk limits so
        # the in-loop lfetches are nullified outside the intended range
        # ("one more register, one more compare ... per stream")
        conditional = plan.enabled and plan.conditional
        # pointers live in r2..r(1+k); limits in r(2+k)..r(1+2k).  Both
        # must fit the scratch window r2..r15 — a kernel wide enough to
        # overflow it (k > 7) falls back to unconditional prefetching
        # rather than spilling limit registers into the parameter window.
        if conditional and 2 * k > 14:
            conditional = False
        limit_base = 2 + k
        if conditional:
            for j, reg in enumerate(pf_regs):
                em.emit(
                    Instruction(
                        Op.SHLADD, r1=limit_base + j, r2=_PARAM_BASE, imm=3, r3=reg
                    )
                )

        # prologue prefetches cover the head of every stream's chunk —
        # the in-loop queue only reaches lines >= distance, so without a
        # prologue the chunk head is never re-acquired after a neighbour's
        # overshooting prefetch stole it (paper Figure 2 shows this
        # prologue for y; we close icc's coverage hole for all streams)
        self._emit_prologue_prefetch(em, plan, pf_regs)

        # SWP setup
        em.emit(Instruction(Op.CLRRRB))
        em.emit(Instruction(Op.ALLOC, imm=_sor_for(k)))
        em.emit(Instruction(Op.MOV_PR_ROT, imm=1 << 16))
        self._loop_count_setup(em, _PARAM_BASE)
        em.emit(Instruction(Op.MOV_EC_IMM, imm=3))

        # prefetch addressing: read-modify-write two-stream kernels
        # (DAXPY's y = y + a*x) get the Figure-2 rotating queue (one
        # lfetch alternating streams); everything else gets one prefetch
        # register per stream (icc's multi-stream form — which is also
        # what lets a binary optimizer associate each lfetch with its
        # stream by scanning the `add rPF = dist, rBASE` init)
        rmw = any(array == template.dest for array, _ in load_streams)
        use_queue = plan.enabled and k <= 2 and rmw and not conditional
        if plan.enabled:
            if use_queue:
                for idx, reg in enumerate(pf_regs):
                    em.emit(
                        Instruction(
                            Op.ADDI, r1=32 + k - idx, r2=reg, imm=plan.distance_bytes
                        )
                    )
            else:
                for j, reg in enumerate(pf_regs):
                    em.emit(
                        Instruction(Op.ADDI, r1=2 + j, r2=reg, imm=plan.distance_bytes)
                    )

        loop_head = em.label(f".{name}{suffix}_loop")

        # stage p16: loads + prefetches
        for (array, shift) in load_streams:
            fr = 32 + 2 * load_streams.index((array, shift))
            em.emit(
                Instruction(
                    Op.LDFD, qp=16, r1=fr, r2=load_regs[(array, shift)], imm=8, unit="M"
                )
            )
        if plan.enabled:
            if use_queue:
                em.emit(
                    Instruction(
                        Op.LFETCH, qp=16, r2=32 + k, hint=plan.hint, excl=plan.excl, unit="M"
                    )
                )
                em.emit(Instruction(Op.ADDI, qp=16, r1=32, r2=32 + k, imm=8 * k))
            else:
                for j in range(k):
                    if conditional:
                        em.emit(
                            Instruction(
                                Op.CMP_LT, qp=16, r1=6, r2=7, r3=2 + j,
                                r4=limit_base + j,
                            )
                        )
                        em.emit(
                            Instruction(
                                Op.LFETCH, qp=6, r2=2 + j, imm=8,
                                hint=plan.hint, excl=plan.excl, unit="M",
                            )
                        )
                    else:
                        em.emit(
                            Instruction(
                                Op.LFETCH, qp=16, r2=2 + j, imm=8,
                                hint=plan.hint, excl=plan.excl, unit="M",
                            )
                        )

        # stage p17: compute into rotating f60 (read as f61 by the store)
        def stream_fr(term: Term) -> int:
            return 33 + 2 * load_streams.index((term.array, term.shift))

        terms = template.terms
        if template.scale is None and len(terms) == 1:
            em.emit(
                Instruction(Op.FMA, qp=17, r1=60, r2=8, r3=stream_fr(terms[0]), r4=0)
            )
        else:
            em.emit(Instruction(Op.FMUL, qp=17, r1=24, r2=8, r3=stream_fr(terms[0])))
            for j, term in enumerate(terms[1:-1], start=1):
                em.emit(
                    Instruction(Op.FMA, qp=17, r1=24, r2=8 + j, r3=stream_fr(term), r4=24)
                )
            if len(terms) > 1:
                last = terms[-1]
                dest_fr = 24 if template.scale is not None else 60
                em.emit(
                    Instruction(
                        Op.FMA, qp=17, r1=dest_fr, r2=8 + len(terms) - 1,
                        r3=stream_fr(last), r4=24,
                    )
                )
            if template.scale is not None:
                scale_fr = 33 + 2 * load_streams.index((template.scale, 0))
                em.emit(Instruction(Op.FMUL, qp=17, r1=60, r2=24, r3=scale_fr))

        # stage p18: store
        em.emit(Instruction(Op.STFD, qp=18, r2=dest_reg, r3=61, imm=8, unit="M"))
        em.emit(Instruction(Op.BR_CTOP, label=f".{name}{suffix}_loop", hint="sptk", unit="B"))

        em.emit(Instruction(Op.BR_RET, unit="B"))
        return loop_head

    # -- ReduceLoop ---------------------------------------------------------------

    def _compile_reduce(self, template: ReduceLoop, plan: PrefetchPlan) -> Function:
        em = Emitter(self.image)
        name = template.name
        dot = template.src_b is not None

        params = [
            ParamSpec(_PARAM_BASE, "count"),
            ParamSpec(_PARAM_BASE + 1, "addr", template.src_a, 0),
        ]
        a_reg = _PARAM_BASE + 1
        b_reg = None
        next_reg = _PARAM_BASE + 2
        if dot:
            params.append(ParamSpec(next_reg, "addr", template.src_b, 0))
            b_reg = next_reg
            next_reg += 1
        params.append(ParamSpec(next_reg, "raw", None))
        result_reg = next_reg

        entry = em.label(name)
        em.emit(Instruction(Op.FADD, r1=24, r2=0, r3=0))  # acc = 0
        pf_regs = [a_reg] + ([b_reg] if dot and template.src_b != template.src_a else [])
        self._emit_prologue_prefetch(em, plan, pf_regs)
        if plan.enabled:
            em.emit(Instruction(Op.ADDI, r1=2, r2=a_reg, imm=plan.distance_bytes))
            if b_reg is not None:
                em.emit(Instruction(Op.ADDI, r1=3, r2=b_reg, imm=plan.distance_bytes))
        self._loop_count_setup(em, _PARAM_BASE)

        loop_head = em.label(f".{name}_loop")
        em.emit(Instruction(Op.LDFD, r1=26, r2=a_reg, imm=8, unit="M"))
        if dot:
            em.emit(Instruction(Op.LDFD, r1=27, r2=b_reg, imm=8, unit="M"))
        if plan.enabled:
            em.emit(
                Instruction(Op.LFETCH, r2=2, imm=8, hint=plan.hint, excl=plan.excl, unit="M")
            )
            if b_reg is not None:
                em.emit(
                    Instruction(
                        Op.LFETCH, r2=3, imm=8, hint=plan.hint, excl=plan.excl, unit="M"
                    )
                )
        if dot:
            em.emit(Instruction(Op.FMA, r1=24, r2=26, r3=27, r4=24))
        else:
            em.emit(Instruction(Op.FADD, r1=24, r2=24, r3=26))
        em.emit(Instruction(Op.BR_CLOOP, label=f".{name}_loop", hint="sptk", unit="B"))

        em.emit(Instruction(Op.STFD, r2=result_reg, r3=24, unit="M"))
        em.emit(Instruction(Op.BR_RET, unit="B"))
        end = em.here()
        self.image.mark_region(name, entry, end)
        return Function(name, entry, (entry, end), params, loop_head)

    # -- GatherLoop (CSR SpMV rows; inner br.wtop) ------------------------------------

    def _compile_gather(self, template: GatherLoop, plan: PrefetchPlan) -> Function:
        em = Emitter(self.image)
        name = template.name
        params = [
            ParamSpec(_PARAM_BASE, "count"),                       # rows
            ParamSpec(_PARAM_BASE + 1, "addr", template.ptr, 0),   # &ptr[row0]
            ParamSpec(_PARAM_BASE + 2, "raw", template.col),       # col base
            ParamSpec(_PARAM_BASE + 3, "raw", template.val),       # val base
            ParamSpec(_PARAM_BASE + 4, "raw", template.x),         # x base
            ParamSpec(_PARAM_BASE + 5, "addr", template.y, 0),     # &y[row0]
        ]
        r_rows, r_ptr, r_col, r_val, r_x, r_y = range(_PARAM_BASE, _PARAM_BASE + 6)

        entry = em.label(name)
        em.emit(Instruction(Op.LD8, r1=8, r2=r_ptr, imm=8, unit="M"))  # cur = ptr[0]
        # streaming address regs for col/val follow cur
        em.emit(Instruction(Op.SHLADD, r1=12, r2=8, imm=3, r3=r_col))
        em.emit(Instruction(Op.SHLADD, r1=14, r2=8, imm=3, r3=r_val))
        if plan.enabled:
            self._emit_prologue_prefetch(em, plan, [12, 14])
            em.emit(Instruction(Op.ADDI, r1=2, r2=12, imm=plan.distance_bytes))
            em.emit(Instruction(Op.ADDI, r1=3, r2=14, imm=plan.distance_bytes))
        self._loop_count_setup(em, r_rows)

        loop_head = em.label(f".{name}_row")
        em.emit(Instruction(Op.LD8, r1=9, r2=r_ptr, imm=8, unit="M"))  # end = ptr[i+1]
        em.emit(Instruction(Op.FADD, r1=24, r2=0, r3=0))               # acc = 0
        em.emit(Instruction(Op.MOV_EC_IMM, imm=1))

        em.label(f".{name}_k")
        em.emit(Instruction(Op.CMP_LT, r1=6, r2=7, r3=8, r4=9))
        em.emit(Instruction(Op.LD8, qp=6, r1=11, r2=12, imm=8, unit="M"))   # col[k]
        em.emit(Instruction(Op.SHLADD, qp=6, r1=13, r2=11, imm=3, r3=r_x))  # &x[col]
        em.emit(Instruction(Op.LDFD, qp=6, r1=28, r2=13, unit="M"))
        em.emit(Instruction(Op.LDFD, qp=6, r1=29, r2=14, imm=8, unit="M"))  # a[k]
        if plan.enabled:
            em.emit(Instruction(Op.LFETCH, qp=6, r2=2, imm=8, hint=plan.hint, excl=plan.excl, unit="M"))
            em.emit(Instruction(Op.LFETCH, qp=6, r2=3, imm=8, hint=plan.hint, excl=plan.excl, unit="M"))
        em.emit(Instruction(Op.FMA, qp=6, r1=24, r2=28, r3=29, r4=24))
        em.emit(Instruction(Op.ADDI, qp=6, r1=8, r2=8, imm=1))
        em.emit(Instruction(Op.BR_WTOP, qp=6, label=f".{name}_k", hint="sptk", unit="B"))

        # y[i] += acc
        em.emit(Instruction(Op.LDFD, r1=30, r2=r_y, unit="M"))
        em.emit(Instruction(Op.FADD, r1=30, r2=30, r3=24))
        em.emit(Instruction(Op.STFD, r2=r_y, r3=30, imm=8, unit="M"))
        em.emit(Instruction(Op.BR_CLOOP, label=f".{name}_row", hint="sptk", unit="B"))

        em.emit(Instruction(Op.BR_RET, unit="B"))
        end = em.here()
        self.image.mark_region(name, entry, end)
        return Function(name, entry, (entry, end), params, loop_head)

    # -- HistogramLoop -----------------------------------------------------------------

    def _compile_histogram(self, template: HistogramLoop, plan: PrefetchPlan) -> Function:
        em = Emitter(self.image)
        name = template.name
        params = [
            ParamSpec(_PARAM_BASE, "count"),
            ParamSpec(_PARAM_BASE + 1, "addr", template.key, 0),
            ParamSpec(_PARAM_BASE + 2, "raw", template.cnt),
        ]
        r_n, r_key, r_cnt = range(_PARAM_BASE, _PARAM_BASE + 3)

        entry = em.label(name)
        self._emit_prologue_prefetch(em, plan, [r_key])
        if plan.enabled:
            em.emit(Instruction(Op.ADDI, r1=2, r2=r_key, imm=plan.distance_bytes))
        self._loop_count_setup(em, r_n)

        loop_head = em.label(f".{name}_loop")
        em.emit(Instruction(Op.LD8, r1=8, r2=r_key, imm=8, unit="M"))
        em.emit(Instruction(Op.SHLADD, r1=9, r2=8, imm=3, r3=r_cnt))
        em.emit(Instruction(Op.LD8, r1=10, r2=9, unit="M"))
        em.emit(Instruction(Op.ADDI, r1=10, r2=10, imm=1))
        em.emit(Instruction(Op.ST8, r2=9, r3=10, unit="M"))
        if plan.enabled:
            em.emit(Instruction(Op.LFETCH, r2=2, imm=8, hint=plan.hint, excl=plan.excl, unit="M"))
        em.emit(Instruction(Op.BR_CLOOP, label=f".{name}_loop", hint="sptk", unit="B"))

        em.emit(Instruction(Op.BR_RET, unit="B"))
        end = em.here()
        self.image.mark_region(name, entry, end)
        return Function(name, entry, (entry, end), params, loop_head)

    # -- IntSumLoop -------------------------------------------------------------------

    def _compile_intsum(self, template: IntSumLoop, plan: PrefetchPlan) -> Function:
        em = Emitter(self.image)
        name = template.name
        params: list[ParamSpec] = [ParamSpec(_PARAM_BASE, "count")]
        params.append(ParamSpec(_PARAM_BASE + 1, "addr", template.dest, 0))
        dest_reg = _PARAM_BASE + 1
        src_regs = []
        for j, (array, shift) in enumerate(template.sources):
            params.append(ParamSpec(_PARAM_BASE + 2 + j, "addr", array, shift))
            src_regs.append(_PARAM_BASE + 2 + j)
        if len(params) > _MAX_PARAMS:
            raise CompilerError(f"{name}: too many sources for the calling convention")

        entry = em.label(name)
        self._emit_prologue_prefetch(em, plan, src_regs[:2])
        if plan.enabled:
            em.emit(Instruction(Op.ADDI, r1=2, r2=src_regs[0], imm=plan.distance_bytes))
        self._loop_count_setup(em, _PARAM_BASE)

        loop_head = em.label(f".{name}_loop")
        em.emit(Instruction(Op.LD8, r1=8, r2=src_regs[0], imm=8, unit="M"))
        for reg in src_regs[1:]:
            em.emit(Instruction(Op.LD8, r1=9, r2=reg, imm=8, unit="M"))
            em.emit(Instruction(Op.ADD, r1=8, r2=8, r3=9))
        if plan.enabled:
            em.emit(Instruction(Op.LFETCH, r2=2, imm=8, hint=plan.hint, excl=plan.excl, unit="M"))
        em.emit(Instruction(Op.ST8, r2=dest_reg, r3=8, imm=8, unit="M"))
        em.emit(Instruction(Op.BR_CLOOP, label=f".{name}_loop", hint="sptk", unit="B"))

        em.emit(Instruction(Op.BR_RET, unit="B"))
        end = em.here()
        self.image.mark_region(name, entry, end)
        return Function(name, entry, (entry, end), params, loop_head)

    # -- ComputeLoop ----------------------------------------------------------------------

    def _compile_compute(self, template: ComputeLoop) -> Function:
        em = Emitter(self.image)
        name = template.name
        params = [ParamSpec(_PARAM_BASE, "count")]

        entry = em.label(name)
        pool = self._const_pool(name, [1.0000001, 1e-7])
        self._emit_pool_loads(em, pool, 2)
        em.emit(Instruction(Op.FADD, r1=24, r2=0, r3=1))  # x = 1.0
        self._loop_count_setup(em, _PARAM_BASE)

        loop_head = em.label(f".{name}_loop")
        for j in range(template.flops_per_iter):
            dest = 24 + (j % 4)
            em.emit(Instruction(Op.FMA, r1=dest, r2=24 + ((j + 3) % 4), r3=8, r4=9))
        em.emit(Instruction(Op.BR_CLOOP, label=f".{name}_loop", hint="sptk", unit="B"))

        em.emit(Instruction(Op.BR_RET, unit="B"))
        end = em.here()
        self.image.mark_region(name, entry, end)
        return Function(name, entry, (entry, end), params, loop_head)
