"""Kernel templates — the compiler's input language.

The NPB-like workloads and DAXPY are built from five loop templates
that cover the loop shapes the paper's Table 1 exhibits:

* :class:`StreamLoop` — elementwise linear combination over contiguous
  streams (DAXPY, stencil sweeps, smoothers).  Lowered to a modulo-
  scheduled ``br.ctop`` loop with rotating registers and an icc-style
  rotating prefetch queue (the paper's Figure 2 shape).
* :class:`ReduceLoop` — sum / dot-product reduction, lowered to a
  ``br.cloop`` counted loop.
* :class:`GatherLoop` — CSR sparse matrix-vector product row sweep;
  the inner non-counted loop uses ``br.wtop``.
* :class:`HistogramLoop` — indexed read-modify-write increments
  (bucket counting, IS).
* :class:`ComputeLoop` — register-only FP work (EP).

Each template instance compiles to one shared *function* that all
threads call with per-chunk parameters in registers, so one binary is
executed by every thread — which is what makes COBRA's single patch
visible to all of them.
"""

from __future__ import annotations

import math

from dataclasses import dataclass, field

from ..errors import CompilerError

__all__ = [
    "Term",
    "StreamLoop",
    "ReduceLoop",
    "GatherLoop",
    "HistogramLoop",
    "ComputeLoop",
    "IntSumLoop",
    "KernelTemplate",
    "MAX_SHIFT",
]

#: Largest element offset a template may encode.  Shifts become part of
#: the register calling convention (``addr`` params are precomputed as
#: ``base + 8*(chunk_start+shift)``), so a bound here is what lets a
#: generator reason about halo allocation instead of chasing wild
#: addresses into unrelated arrays.
MAX_SHIFT = 1 << 20


def _check_name(owner: str, what: str, name: object) -> None:
    """Template names and array names become labels and allocation keys;
    reject anything that cannot round-trip through the assembler text."""
    if not isinstance(name, str) or not name:
        raise CompilerError(f"{owner}: {what} must be a non-empty string, got {name!r}")
    if any(ch.isspace() for ch in name):
        raise CompilerError(f"{owner}: {what} {name!r} contains whitespace")


def _check_shift(owner: str, shift: object) -> None:
    if not isinstance(shift, int) or isinstance(shift, bool):
        raise CompilerError(f"{owner}: shift must be an integer, got {shift!r}")
    if abs(shift) > MAX_SHIFT:
        raise CompilerError(f"{owner}: shift {shift} out of range (|shift| <= {MAX_SHIFT})")


@dataclass(frozen=True)
class Term:
    """One linear term ``coef * array[i + shift]``."""

    array: str
    coef: float = 1.0
    shift: int = 0  # element offset relative to the loop index

    def __post_init__(self) -> None:
        _check_name("Term", "array", self.array)
        if not isinstance(self.coef, (int, float)) or not math.isfinite(self.coef):
            raise CompilerError(f"Term({self.array}): coef must be finite, got {self.coef!r}")
        _check_shift(f"Term({self.array})", self.shift)


@dataclass(frozen=True)
class StreamLoop:
    """``dest[i] = sum_j coef_j * src_j[i + shift_j]`` for i in a chunk.

    ``scale`` optionally multiplies the sum by ``scale[i]`` (elementwise
    product — used by FT's butterfly analogue).
    """

    name: str
    dest: str
    terms: tuple[Term, ...]

    scale: str | None = None

    def __post_init__(self) -> None:
        _check_name("StreamLoop", "name", self.name)
        _check_name(self.name, "dest", self.dest)
        if self.scale is not None:
            _check_name(self.name, "scale", self.scale)
        if not self.terms:
            raise CompilerError(f"{self.name}: StreamLoop needs at least one term")
        if len(self.terms) > 8:
            raise CompilerError(f"{self.name}: too many terms (max 8)")

    @property
    def load_arrays(self) -> tuple[str, ...]:
        """Distinct arrays read, in first-use order."""
        seen: dict[str, None] = {}
        for term in self.terms:
            seen.setdefault(term.array, None)
        if self.scale is not None:
            seen.setdefault(self.scale, None)
        return tuple(seen)

    @property
    def streams(self) -> tuple[str, ...]:
        """Distinct arrays touched (prefetch targets), dest included."""
        seen = dict.fromkeys(self.load_arrays)
        seen.setdefault(self.dest, None)
        return tuple(seen)


@dataclass(frozen=True)
class ReduceLoop:
    """``result = sum_i src_a[i] * src_b[i]`` (dot) or ``sum_i src_a[i]``."""

    name: str
    src_a: str
    src_b: str | None = None

    def __post_init__(self) -> None:
        _check_name("ReduceLoop", "name", self.name)
        _check_name(self.name, "src_a", self.src_a)
        if self.src_b is not None:
            _check_name(self.name, "src_b", self.src_b)

    @property
    def streams(self) -> tuple[str, ...]:
        if self.src_b is None or self.src_b == self.src_a:
            return (self.src_a,)
        return (self.src_a, self.src_b)


@dataclass(frozen=True)
class GatherLoop:
    """CSR SpMV rows: ``y[i] += sum_{k in row i} a[k] * x[col[k]]``.

    The inner per-row loop is non-counted (``br.wtop``); ``col`` and
    ``a`` are streamed (prefetchable), ``x`` is gathered (not
    prefetchable — as a real compiler would conclude).
    """

    name: str
    ptr: str = "ptr"
    col: str = "col"
    val: str = "a"
    x: str = "x"
    y: str = "y"

    def __post_init__(self) -> None:
        _check_name("GatherLoop", "name", self.name)
        roles = {"ptr": self.ptr, "col": self.col, "val": self.val, "x": self.x, "y": self.y}
        for role, arr in roles.items():
            _check_name(self.name, role, arr)
        if len(set(roles.values())) != len(roles):
            raise CompilerError(
                f"{self.name}: GatherLoop roles must name five distinct arrays, "
                f"got {tuple(roles.values())!r}"
            )


@dataclass(frozen=True)
class IntSumLoop:
    """``dest[i] = sum_j src_j[i + shift_j]`` over 64-bit integers.

    Used for integer merges (IS's histogram reduction).  Sources are
    (array, shift) pairs; coefficients are implicitly one.
    """

    name: str
    dest: str
    sources: tuple[tuple[str, int], ...]

    def __post_init__(self) -> None:
        _check_name("IntSumLoop", "name", self.name)
        _check_name(self.name, "dest", self.dest)
        if not self.sources:
            raise CompilerError(f"{self.name}: IntSumLoop needs at least one source")
        if len(self.sources) > 10:
            raise CompilerError(f"{self.name}: too many sources (max 10)")
        for arr, shift in self.sources:
            _check_name(self.name, "source array", arr)
            _check_shift(f"{self.name}[{arr}]", shift)

    @property
    def streams(self) -> tuple[str, ...]:
        seen = dict.fromkeys(arr for arr, _ in self.sources)
        seen.setdefault(self.dest, None)
        return tuple(seen)


@dataclass(frozen=True)
class HistogramLoop:
    """``cnt[key[i]] += 1`` — indexed RMW on a (possibly shared) array."""

    name: str
    key: str = "key"
    cnt: str = "cnt"

    def __post_init__(self) -> None:
        _check_name("HistogramLoop", "name", self.name)
        _check_name(self.name, "key", self.key)
        _check_name(self.name, "cnt", self.cnt)
        if self.key == self.cnt:
            raise CompilerError(f"{self.name}: key and cnt must be distinct arrays")


@dataclass(frozen=True)
class ComputeLoop:
    """Register-only FP work: ``flops_per_iter`` chained fmas per
    iteration (EP's arithmetic core)."""

    name: str
    flops_per_iter: int = 4

    def __post_init__(self) -> None:
        _check_name("ComputeLoop", "name", self.name)
        if not isinstance(self.flops_per_iter, int) or isinstance(self.flops_per_iter, bool):
            raise CompilerError(f"{self.name}: flops_per_iter must be an integer")
        if not 1 <= self.flops_per_iter <= 16:
            raise CompilerError(f"{self.name}: flops_per_iter out of range")


KernelTemplate = (
    StreamLoop | ReduceLoop | GatherLoop | HistogramLoop | ComputeLoop | IntSumLoop
)
