"""Kernel templates — the compiler's input language.

The NPB-like workloads and DAXPY are built from five loop templates
that cover the loop shapes the paper's Table 1 exhibits:

* :class:`StreamLoop` — elementwise linear combination over contiguous
  streams (DAXPY, stencil sweeps, smoothers).  Lowered to a modulo-
  scheduled ``br.ctop`` loop with rotating registers and an icc-style
  rotating prefetch queue (the paper's Figure 2 shape).
* :class:`ReduceLoop` — sum / dot-product reduction, lowered to a
  ``br.cloop`` counted loop.
* :class:`GatherLoop` — CSR sparse matrix-vector product row sweep;
  the inner non-counted loop uses ``br.wtop``.
* :class:`HistogramLoop` — indexed read-modify-write increments
  (bucket counting, IS).
* :class:`ComputeLoop` — register-only FP work (EP).

Each template instance compiles to one shared *function* that all
threads call with per-chunk parameters in registers, so one binary is
executed by every thread — which is what makes COBRA's single patch
visible to all of them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import CompilerError

__all__ = [
    "Term",
    "StreamLoop",
    "ReduceLoop",
    "GatherLoop",
    "HistogramLoop",
    "ComputeLoop",
    "IntSumLoop",
    "KernelTemplate",
]


@dataclass(frozen=True)
class Term:
    """One linear term ``coef * array[i + shift]``."""

    array: str
    coef: float = 1.0
    shift: int = 0  # element offset relative to the loop index


@dataclass(frozen=True)
class StreamLoop:
    """``dest[i] = sum_j coef_j * src_j[i + shift_j]`` for i in a chunk.

    ``scale`` optionally multiplies the sum by ``scale[i]`` (elementwise
    product — used by FT's butterfly analogue).
    """

    name: str
    dest: str
    terms: tuple[Term, ...]

    scale: str | None = None

    def __post_init__(self) -> None:
        if not self.terms:
            raise CompilerError(f"{self.name}: StreamLoop needs at least one term")
        if len(self.terms) > 8:
            raise CompilerError(f"{self.name}: too many terms (max 8)")

    @property
    def load_arrays(self) -> tuple[str, ...]:
        """Distinct arrays read, in first-use order."""
        seen: dict[str, None] = {}
        for term in self.terms:
            seen.setdefault(term.array, None)
        if self.scale is not None:
            seen.setdefault(self.scale, None)
        return tuple(seen)

    @property
    def streams(self) -> tuple[str, ...]:
        """Distinct arrays touched (prefetch targets), dest included."""
        seen = dict.fromkeys(self.load_arrays)
        seen.setdefault(self.dest, None)
        return tuple(seen)


@dataclass(frozen=True)
class ReduceLoop:
    """``result = sum_i src_a[i] * src_b[i]`` (dot) or ``sum_i src_a[i]``."""

    name: str
    src_a: str
    src_b: str | None = None

    @property
    def streams(self) -> tuple[str, ...]:
        if self.src_b is None or self.src_b == self.src_a:
            return (self.src_a,)
        return (self.src_a, self.src_b)


@dataclass(frozen=True)
class GatherLoop:
    """CSR SpMV rows: ``y[i] += sum_{k in row i} a[k] * x[col[k]]``.

    The inner per-row loop is non-counted (``br.wtop``); ``col`` and
    ``a`` are streamed (prefetchable), ``x`` is gathered (not
    prefetchable — as a real compiler would conclude).
    """

    name: str
    ptr: str = "ptr"
    col: str = "col"
    val: str = "a"
    x: str = "x"
    y: str = "y"


@dataclass(frozen=True)
class IntSumLoop:
    """``dest[i] = sum_j src_j[i + shift_j]`` over 64-bit integers.

    Used for integer merges (IS's histogram reduction).  Sources are
    (array, shift) pairs; coefficients are implicitly one.
    """

    name: str
    dest: str
    sources: tuple[tuple[str, int], ...]

    def __post_init__(self) -> None:
        if not self.sources:
            raise CompilerError(f"{self.name}: IntSumLoop needs at least one source")
        if len(self.sources) > 10:
            raise CompilerError(f"{self.name}: too many sources (max 10)")

    @property
    def streams(self) -> tuple[str, ...]:
        seen = dict.fromkeys(arr for arr, _ in self.sources)
        seen.setdefault(self.dest, None)
        return tuple(seen)


@dataclass(frozen=True)
class HistogramLoop:
    """``cnt[key[i]] += 1`` — indexed RMW on a (possibly shared) array."""

    name: str
    key: str = "key"
    cnt: str = "cnt"


@dataclass(frozen=True)
class ComputeLoop:
    """Register-only FP work: ``flops_per_iter`` chained fmas per
    iteration (EP's arithmetic core)."""

    name: str
    flops_per_iter: int = 4

    def __post_init__(self) -> None:
        if not 1 <= self.flops_per_iter <= 16:
            raise CompilerError(f"{self.name}: flops_per_iter out of range")


KernelTemplate = (
    StreamLoop | ReduceLoop | GatherLoop | HistogramLoop | ComputeLoop | IntSumLoop
)
