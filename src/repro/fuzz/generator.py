"""Seeded scenario generation over the kernel-template space.

A scenario is fully determined by a :class:`ScenarioParams` — a frozen,
picklable record of every knob the generator sampled.  ``generate_params
(seed)`` draws one from ``random.Random(seed)``; rebuilding a scenario
from a (possibly shrunk) params record is deterministic, which is what
makes the two-integer repro contract and the shrinker work at all.

The sampled space deliberately straddles every behavioural cliff the
runtime has:

* trip counts around the trace-JIT hot threshold and around the
  32-bundle trace limit (term count drives bundle count),
* chunk sizes that do / do not align to the 128-byte cache line, so
  adjacent threads' chunks share a line (``share_boundary``),
* stencil shifts that make threads read into each other's chunks,
* gather inner-loop nest depth (CSR row length),
* prefetch aggressiveness knobs fed to the compiler plan.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace

__all__ = ["ScenarioParams", "generate_params", "LOOP_CLASSES", "describe"]

#: Every loop class the generator can emit.
LOOP_CLASSES = ("stream", "reduce", "gather", "histogram", "compute", "intsum")

#: 128-byte line / 8-byte elements.
_ELEMS_PER_LINE = 16


@dataclass(frozen=True)
class ScenarioParams:
    """Everything needed to rebuild one scenario, bit for bit."""

    seed: int                     # generator seed (also seeds array data)
    fault_seed: int               # seeds the fault schedule on the faulted axis
    loop_class: str               # one of LOOP_CLASSES
    machine_kind: str             # "smp" | "altix"
    n_threads: int                # 2..4
    chunk: int                    # elements per thread chunk
    reps: int                     # outer repetitions of the region
    n_terms: int                  # stream terms / intsum sources / compute flops
    shift_span: int               # max |shift| used by stream/intsum terms
    nest_depth: int               # gather: nonzeros per CSR row
    share_boundary: bool          # thread chunks share a cache line
    prefetch_distance: int        # plan.distance_lines
    conditional_prefetch: bool    # plan.conditional (predication density)
    multiversion: bool            # plan.multiversion
    prologue_prefetch: bool       # plan.prologue

    def __post_init__(self) -> None:
        if self.loop_class not in LOOP_CLASSES:
            raise ValueError(f"unknown loop class {self.loop_class!r}")
        if self.machine_kind not in ("smp", "altix"):
            raise ValueError(f"unknown machine kind {self.machine_kind!r}")

    @property
    def n(self) -> int:
        """Total problem size across threads."""
        return self.chunk * self.n_threads


def generate_params(seed: int, *, fault_seed: int | None = None) -> ScenarioParams:
    """Draw one scenario from ``random.Random(seed)``.

    ``fault_seed`` overrides the drawn fault seed — used by replay so a
    printed ``(generator_seed, fault_seed)`` pair reproduces exactly.
    """
    rng = random.Random(seed)
    loop_class = rng.choice(LOOP_CLASSES)
    # altix needs an even cpu count; keep thread counts small so the
    # whole axis sweep for one scenario stays well under a second.
    machine_kind = rng.choice(("smp", "smp", "altix"))
    n_threads = rng.choice((2, 4)) if machine_kind == "altix" else rng.choice((2, 3, 4))

    share_boundary = rng.random() < 0.5
    if share_boundary:
        # any chunk not a multiple of 16 elements puts adjacent chunks
        # on a shared 128-byte line
        chunk = rng.choice((6, 10, 13, 18, 21, 27))
    else:
        chunk = rng.choice((16, 32, 48))
    # short trip counts keep some loops near the hot threshold; outer
    # reps make them cumulatively hot, so ramp-dominated and
    # steady-state-dominated scenarios both occur naturally.
    reps = rng.randint(2, 6)

    n_terms = rng.randint(1, 8) if loop_class == "stream" else rng.randint(1, 6)
    if loop_class == "compute":
        n_terms = rng.randint(1, 16)  # flops per iteration
    shift_span = rng.choice((0, 0, 1, 2, 4)) if loop_class in ("stream", "intsum") else 0
    nest_depth = rng.randint(1, 6) if loop_class == "gather" else 1

    drawn_fault_seed = rng.randint(0, 2**31 - 1)

    # ~1 in 8 seeds is forced into the tiny trip-count regime: the
    # smallest chunk, 2 reps, depth-1 rows.  Short runs like these keep
    # compiled traces from ever chaining exits into each other,
    # guaranteeing tree-free coverage per loop class — which a uniform
    # draw makes vanishingly rare for gather (whose inner nest promotes
    # into a trace tree almost immediately).  A separate RNG stream
    # keeps the main draw sequence (above) stable.
    if random.Random(seed ^ 0x714A).random() < 0.125:
        chunk, reps, nest_depth, share_boundary = 6, 2, 1, True

    return ScenarioParams(
        seed=seed,
        fault_seed=drawn_fault_seed if fault_seed is None else fault_seed,
        loop_class=loop_class,
        machine_kind=machine_kind,
        n_threads=n_threads,
        chunk=chunk,
        reps=reps,
        n_terms=n_terms,
        shift_span=shift_span,
        nest_depth=nest_depth,
        share_boundary=share_boundary,
        prefetch_distance=rng.choice((1, 2, 4)),
        conditional_prefetch=rng.random() < 0.5,
        multiversion=rng.random() < 0.3,
        prologue_prefetch=rng.random() < 0.7,
    )


def with_fault_seed(params: ScenarioParams, fault_seed: int) -> ScenarioParams:
    return replace(params, fault_seed=fault_seed)


def describe(params: ScenarioParams) -> str:
    """One-line human description — stable, used in reports."""
    bits = [
        f"{params.loop_class}",
        f"machine={params.machine_kind}x{params.n_threads}",
        f"chunk={params.chunk}",
        f"reps={params.reps}",
        f"terms={params.n_terms}",
    ]
    if params.shift_span:
        bits.append(f"shift=±{params.shift_span}")
    if params.loop_class == "gather":
        bits.append(f"nnz/row={params.nest_depth}")
    if params.share_boundary:
        bits.append("shared-line")
    bits.append(
        "plan=d{}{}{}{}".format(
            params.prefetch_distance,
            "c" if params.conditional_prefetch else "",
            "m" if params.multiversion else "",
            "p" if params.prologue_prefetch else "",
        )
    )
    return " ".join(bits)
