"""Greedy scenario minimization for diverging seeds.

Given params whose axis sweep diverges, try reducing each template
parameter toward its minimum — keeping a candidate only if the reduced
scenario *still diverges* — and iterate to a fixpoint.  The result is
the smallest failing kernel reachable by per-field reduction, printed
with the divergence report so a human debugs a 2-thread / 1-term /
2-element loop instead of the original scenario.

The check function defaults to :func:`repro.fuzz.differ.run_scenario`;
tests inject cheaper predicates.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable

from .generator import ScenarioParams, describe

__all__ = ["shrink", "ShrinkResult"]

#: Reduction order: biggest wall-clock levers first.
_FIELD_CANDIDATES: tuple[tuple[str, Callable[[ScenarioParams], list]], ...] = (
    ("reps", lambda p: [1, p.reps // 2, p.reps - 1]),
    ("chunk", lambda p: [2, p.chunk // 2, p.chunk - 1]),
    ("n_terms", lambda p: [1, p.n_terms // 2, p.n_terms - 1]),
    ("nest_depth", lambda p: [1, p.nest_depth // 2, p.nest_depth - 1]),
    ("n_threads", lambda p: [2]),
    ("shift_span", lambda p: [0]),
    ("prefetch_distance", lambda p: [1]),
    ("share_boundary", lambda p: [False]),
    ("conditional_prefetch", lambda p: [False]),
    ("multiversion", lambda p: [False]),
    ("prologue_prefetch", lambda p: [False]),
    ("machine_kind", lambda p: ["smp"]),
)


class ShrinkResult:
    """Outcome of one shrinking pass."""

    def __init__(self, params: ScenarioParams, attempts: int, reductions: int) -> None:
        self.params = params
        self.attempts = attempts
        self.reductions = reductions

    def summary(self) -> str:
        return (
            f"shrunk to: {describe(self.params)} "
            f"({self.reductions} reduction(s) in {self.attempts} attempt(s))"
        )


def _diverges_default(params: ScenarioParams) -> bool:
    from .differ import run_scenario

    return not run_scenario(params).ok


def shrink(
    params: ScenarioParams,
    diverges: Callable[[ScenarioParams], bool] | None = None,
    budget: int = 48,
) -> ShrinkResult:
    """Minimize ``params`` while ``diverges`` stays true.

    ``budget`` caps total candidate evaluations (each one is a full
    axis sweep with the default check) so a pathological scenario can't
    stall a CI job.
    """
    check = diverges or _diverges_default
    current = params
    attempts = 0
    reductions = 0
    progress = True
    while progress and attempts < budget:
        progress = False
        for field_name, candidates in _FIELD_CANDIDATES:
            for value in candidates(current):
                if attempts >= budget:
                    break
                if value == getattr(current, field_name):
                    continue
                try:
                    candidate = replace(current, **{field_name: value})
                except ValueError:
                    continue  # e.g. invalid machine/thread combination
                if not _valid(candidate):
                    continue
                attempts += 1
                if check(candidate):
                    current = candidate
                    reductions += 1
                    progress = True
                    break  # re-derive candidates from the smaller value
    return ShrinkResult(current, attempts, reductions)


def _valid(params: ScenarioParams) -> bool:
    if params.n_threads < 2 or params.chunk < 1 or params.reps < 1:
        return False
    if params.n_terms < 1 or params.nest_depth < 1:
        return False
    if params.machine_kind == "altix" and params.n_threads % 2:
        return False
    return True
