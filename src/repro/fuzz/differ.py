"""Differential execution of one scenario across all must-agree axes.

Every generated scenario is executed across thirteen must-agree axes,
each on a fresh machine with an identical program build:

1. ``none``      — plain interpreter, no COBRA (ground truth);
2. ``adaptive``  — COBRA adaptive, trace JIT on, HPM samples captured;
3. ``jit-off``   — identical but with the trace JIT disabled on every
   core; must match axis 2 *fully* — output bytes, cycles, retired
   instructions, memory-event counters, and the captured HPM sample
   stream (the JIT is a fast path, never a semantics or timing change);
4. ``osr-off``   — trace JIT on but OSR mid-loop entry and trace trees
   disabled on every core (loop-head-only dispatch, the
   ``REPRO_TRACE_JIT=osr-off`` CI bisection mode); must match axis 2
   *fully* on the same six observables — OSR only widens *where*
   compiled code may be entered, never what it computes or when;
5. ``faulted``   — adaptive under a seeded fault schedule
   (``fault_seed``); outputs must match ground truth and the fault
   ledger must be fully accounted;
6. ``ckpt``      — adaptive persisting to a fresh in-memory checkpoint
   store, straight through;
7. a crash run killed at the midpoint durable write of axis 6's store;
8. ``resume``    — warm restart from the crashed store; outputs must
   match the straight-through run and the recovery ledger must account
   every discarded artifact;
9. ``db-cold``   — adaptive attached to a fresh in-memory profile
   database; a cold database is pure observation, so this must match
   axis 2 *fully* (same six observables as the JIT axis);
10. ``db-warm``  — adaptive re-run against the database axis 9 just
   recorded; a warm start may legitimately move deployments earlier
   (cycles change) but outputs must match ground truth;
11. ``db-corrupt`` — adaptive against axis 10's database with one byte
   flipped; a damaged database must load as absent, so this again
   matches axis 2 *fully*;
12. ``overloaded`` — adaptive under the resource governor with a seeded
   mixed overload schedule (budget shrinks, sample floods, slow disk,
   ingest storms); degradation may only shed optimization work, so
   outputs must match ground truth and the overload ledger must be
   fully accounted;
13. ``fleet-faulted`` — a fleet of two instances (one cold, one warm)
   against one optimization daemon over a seeded hostile transport
   (frame drop/dup/reorder/delay/corrupt/poison, partitions, one
   daemon crash); every per-instance output digest must match ground
   truth and the fleet's own invariants (idempotent ingestion, crash
   recovery, fault accounting) must all hold.

``run_scenario`` is a module-level pure function of its params so the
sweep fans out over :func:`repro.parallel.run_tasks` and the report
merges in submission order — byte-identical at any ``--jobs``.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, replace
from typing import Iterable, Sequence

from ..config import (
    FaultConfig,
    GovernorConfig,
    OverloadConfig,
    PersistConfig,
    ProfileDBConfig,
)
from ..cpu.scheduler import Scheduler
from ..errors import SimulatedCrash
from ..hpm.sample import Sample
from ..persist.journal import MemoryDisk
from ..persist.profiledb import PROFILEDB_NAME
from ..validate.differential import _digest, _snapshot_arrays
from ..validate.recovery import zero_rate_faults
from .driver import build_scenario, scenario_machine
from .generator import ScenarioParams, generate_params
from .report import Divergence, FuzzReport, ScenarioResult

__all__ = ["DifferentialFuzzer", "run_scenario", "RunObservables"]

#: Moderate rates for the faulted axis — enough injections to exercise
#: detection/tolerance paths on a tiny run without drowning it.
FAULT_RATES = dict(sample_rate=0.05, patch_rate=0.3, loop_rate=0.1)

#: Runaway backstop: generated scenarios finish in well under this.
MAX_BUNDLES = 3_000_000


@dataclass(frozen=True)
class RunObservables:
    """Everything one axis run exposes for bit-equality comparison."""

    digest: str
    cycles: int
    retired: int
    events: tuple[tuple[str, int], ...]
    n_samples: int
    samples_sha: str
    compiles: int
    ledger_accounted: bool | None   # None = no injector armed
    durable_ops: int = 0
    tree_links: int = 0             # compiled-to-compiled exit handoffs


def _sample_key(s: Sample) -> str:
    return (
        f"{s.index},{s.pc},{s.pid},{s.thread_id},{s.cpu_id},"
        f"{s.counters},{s.btb},{s.miss_pc},{s.miss_latency},{s.miss_addr},{s.cycles}"
    )


def _samples_sha(samples: list[Sample]) -> str:
    h = hashlib.sha256()
    for s in samples:
        h.update(_sample_key(s).encode())
        h.update(b"\n")
    return h.hexdigest()


def _run_axis(
    params: ScenarioParams,
    *,
    cobra: bool,
    jit: bool,
    osr: bool = True,
    faults: FaultConfig | None = None,
    disk: MemoryDisk | None = None,
    profile_db: MemoryDisk | None = None,
    governor: GovernorConfig | None = None,
) -> RunObservables:
    """One differential cell: fresh machine, fresh build, one execution."""
    # deferred: repro.core imports repro.validate at module scope
    from ..core.framework import Cobra

    machine = scenario_machine(params)
    prog = build_scenario(params, machine)
    # the per-core JIT/OSR defaults track REPRO_TRACE_JIT at import;
    # force them per axis so the sweep is environment-independent
    for core in machine.cores:
        core.jit_enabled = jit
        core.osr_enabled = jit and osr

    captured: list[Sample] = []
    ledger_accounted: bool | None = None
    durable_ops = 0
    if not cobra:
        result = prog.run(max_bundles=MAX_BUNDLES)
        compiles = 0
        tree_links = 0
    else:
        config = machine.config.cobra
        if faults is not None:
            config = replace(config, faults=faults)
        if disk is not None:
            config = replace(config, persist=PersistConfig(disk=disk))
        if profile_db is not None:
            config = replace(
                config, profile_db=ProfileDBConfig(disk=profile_db)
            )
        if governor is not None:
            config = replace(config, governor=governor)
        engine = Cobra(machine, prog.image, "adaptive", config)
        for monitor in engine.monitors:
            monitor.drain = _TappedDrain(monitor.drain, captured)
        scheduler = Scheduler([th.core for th in prog.threads])
        engine.install(scheduler)
        try:
            result = prog.run(max_bundles=MAX_BUNDLES, scheduler=scheduler)
        finally:
            engine.stop()
        for monitor in engine.monitors:
            captured.extend(monitor.usb)   # stragglers never drained
        report = engine.report()
        compiles = (report.fastpath or {}).get("compiles", 0)
        tree_links = (report.fastpath or {}).get("tree_links", 0)
        if report.faults is not None:
            ledger_accounted = report.faults.accounted
        if disk is not None:
            durable_ops = disk.durable_ops
    arrays = _snapshot_arrays(prog)
    return RunObservables(
        digest=_digest(arrays),
        cycles=result.cycles,
        retired=result.retired,
        events=tuple(sorted(result.events.snapshot().items())),
        n_samples=len(captured),
        samples_sha=_samples_sha(captured),
        compiles=compiles,
        ledger_accounted=ledger_accounted,
        durable_ops=durable_ops,
        tree_links=tree_links,
    )


@dataclass(frozen=True)
class _ScenarioBuild:
    """Picklable ``WorkloadSpec.build`` wrapper over the generator."""

    params: ScenarioParams

    def __call__(self, machine):
        return build_scenario(self.params, machine)


@dataclass(frozen=True)
class _ScenarioMachine:
    """Picklable machine factory for one scenario's parameters."""

    params: ScenarioParams

    def __call__(self):
        return scenario_machine(self.params)


def _run_fleet_axis(params: ScenarioParams, reference_digest: str):
    """Axis 11: a fleet of two under a hostile transport schedule."""
    from ..config import FleetFaultConfig
    from ..fleet import FleetHarness
    from ..validate.differential import WorkloadSpec

    faults = FleetFaultConfig(
        seed=params.fault_seed,
        frame_rate=0.2,
        partition_rate=0.25,
        daemon_crash_batch=3,
    )
    harness = FleetHarness(
        workload=WorkloadSpec(
            name=f"fuzz-{params.seed}", build=_ScenarioBuild(params), verify=None
        ),
        machine=_ScenarioMachine(params),
        instances=2,
        quorum=1,
        faults=faults,
        optimize_interval=None,   # keep the scenario's own wake interval
        max_bundles=MAX_BUNDLES,
        reference_digest=reference_digest,
        jit=True,
    )
    return harness.run(jobs=1)


class _TappedDrain:
    """Wraps ``MonitoringThread.drain`` to record every delivered sample."""

    def __init__(self, inner, sink: list) -> None:
        self._inner = inner
        self._sink = sink

    def __call__(self) -> list:
        out = self._inner()
        self._sink.extend(out)
        return out


def run_scenario(params: ScenarioParams) -> ScenarioResult:
    """Execute the full axis sweep for one scenario."""
    seed, fault_seed = params.seed, params.fault_seed
    divergences: list[Divergence] = []
    digests: list[tuple[str, str]] = []
    obs: dict[str, RunObservables] = {}

    def diverge(axis: str, observable: str, expected: object, actual: object) -> None:
        divergences.append(
            Divergence(
                seed=seed,
                fault_seed=fault_seed,
                axis=axis,
                observable=observable,
                expected=str(expected),
                actual=str(actual),
            )
        )

    def attempt(axis: str, **kwargs) -> RunObservables | None:
        try:
            out = _run_axis(params, **kwargs)
        except Exception as exc:  # noqa: BLE001 — any escape is a finding
            diverge(axis, "exception", "no exception", f"{type(exc).__name__}: {exc}")
            return None
        obs[axis] = out
        digests.append((axis, out.digest))
        return out

    none = attempt("none", cobra=False, jit=True)
    adaptive = attempt("adaptive", cobra=True, jit=True)
    if none and adaptive and adaptive.digest != none.digest:
        diverge("adaptive vs none", "digest", none.digest, adaptive.digest)

    nojit = attempt("jit-off", cobra=True, jit=False)
    if adaptive and nojit:
        for observable in ("digest", "cycles", "retired", "events",
                           "n_samples", "samples_sha"):
            want, got = getattr(adaptive, observable), getattr(nojit, observable)
            if want != got:
                diverge("jit-off vs jit-on", observable, want, got)

    noosr = attempt("osr-off", cobra=True, jit=True, osr=False)
    if adaptive and noosr:
        # OSR entry/trace trees only widen where compiled code may be
        # entered — with them off the run must stay fully bit-identical
        # (jit-off agreement then pins the whole JIT ladder transitively)
        for observable in ("digest", "cycles", "retired", "events",
                           "n_samples", "samples_sha"):
            want, got = getattr(adaptive, observable), getattr(noosr, observable)
            if want != got:
                diverge("osr-off vs osr-on", observable, want, got)

    faulted = attempt(
        "faulted", cobra=True, jit=True,
        faults=FaultConfig(seed=fault_seed, **FAULT_RATES),
    )
    if faulted:
        if none and faulted.digest != none.digest:
            diverge("faulted vs clean", "digest", none.digest, faulted.digest)
        if faulted.ledger_accounted is False:
            diverge("faulted vs clean", "ledger", "accounted", "unaccounted")

    straight_disk = MemoryDisk()
    straight = attempt(
        "ckpt", cobra=True, jit=True,
        faults=zero_rate_faults(fault_seed), disk=straight_disk,
    )
    if straight:
        if none and straight.digest != none.digest:
            diverge("checkpoint vs none", "digest", none.digest, straight.digest)
        crash_disk = MemoryDisk()
        crash_write = max(1, straight.durable_ops // 2)
        crash_faults = replace(
            zero_rate_faults(fault_seed),
            crash_write=crash_write, crash_torn_bytes=7,
        )
        store_usable = True
        try:
            _run_axis(params, cobra=True, jit=True, faults=crash_faults,
                      disk=crash_disk)
            diverge("crash", "exception", "SimulatedCrash",
                    f"run completed past durable write {crash_write}")
        except SimulatedCrash:
            pass
        except Exception as exc:  # noqa: BLE001
            store_usable = False
            diverge("crash", "exception", "SimulatedCrash",
                    f"{type(exc).__name__}: {exc}")
        if store_usable:
            resumed = attempt(
                "resume", cobra=True, jit=True,
                faults=zero_rate_faults(fault_seed), disk=crash_disk,
            )
            if resumed:
                if resumed.digest != straight.digest:
                    diverge("resume vs straight-through", "digest",
                            straight.digest, resumed.digest)
                if resumed.ledger_accounted is False:
                    diverge("resume vs straight-through", "ledger",
                            "accounted", "unaccounted")

    db_disk = MemoryDisk()
    db_cold = attempt("db-cold", cobra=True, jit=True, profile_db=db_disk)
    if adaptive and db_cold:
        # a cold database only records; it must not perturb the run
        for observable in ("digest", "cycles", "retired", "events",
                           "n_samples", "samples_sha"):
            want, got = getattr(adaptive, observable), getattr(db_cold, observable)
            if want != got:
                diverge("db-cold vs adaptive", observable, want, got)
    if db_cold:
        db_warm = attempt("db-warm", cobra=True, jit=True, profile_db=db_disk)
        if db_warm and none and db_warm.digest != none.digest:
            diverge("db-warm vs none", "digest", none.digest, db_warm.digest)
        corrupt_disk = MemoryDisk()
        blob = bytearray(db_disk.files.get(PROFILEDB_NAME, b""))
        if blob:
            blob[len(blob) // 2] ^= 0xFF
        corrupt_disk.files[PROFILEDB_NAME] = blob
        db_corrupt = attempt(
            "db-corrupt", cobra=True, jit=True, profile_db=corrupt_disk
        )
        if adaptive and db_corrupt:
            # a damaged database must load as absent, never half-seed
            for observable in ("digest", "cycles", "retired", "events",
                               "n_samples", "samples_sha"):
                want, got = (
                    getattr(adaptive, observable), getattr(db_corrupt, observable)
                )
                if want != got:
                    diverge("db-corrupt vs adaptive", observable, want, got)

    overloaded = attempt(
        "overloaded", cobra=True, jit=True,
        governor=GovernorConfig(
            sample_queue_depth=64, budget_floor=48,
            overload=OverloadConfig(
                seed=fault_seed,
                shrink_rate=0.2, flood_rate=0.2,
                disk_rate=0.1, storm_rate=0.1,
                max_events=6,
            ),
        ),
    )
    if overloaded:
        if none and overloaded.digest != none.digest:
            diverge("overloaded vs clean", "digest", none.digest, overloaded.digest)
        if overloaded.ledger_accounted is False:
            diverge("overloaded vs clean", "ledger", "accounted", "unaccounted")

    if none:
        try:
            fleet = _run_fleet_axis(params, none.digest)
        except Exception as exc:  # noqa: BLE001 — any escape is a finding
            diverge("fleet-faulted", "exception", "no exception",
                    f"{type(exc).__name__}: {exc}")
        else:
            digests.append(("fleet-faulted", fleet.records[0].digest))
            for failure in fleet.failures:
                diverge("fleet-faulted vs none", "fleet", "ok", failure)

    return ScenarioResult(
        params=params,
        digests=tuple(digests),
        divergences=tuple(divergences),
        samples=obs["adaptive"].n_samples if "adaptive" in obs else 0,
        compiles=obs["adaptive"].compiles if "adaptive" in obs else 0,
        tree_links=obs["adaptive"].tree_links if "adaptive" in obs else 0,
    )


class DifferentialFuzzer:
    """Fans scenarios over worker processes; merges in submission order."""

    def __init__(
        self,
        seeds: Iterable[int] | None = None,
        pairs: Sequence[tuple[int, int]] | None = None,
        fault_seed: int | None = None,
    ) -> None:
        if pairs is not None:
            self.params = [
                generate_params(s, fault_seed=f) for s, f in pairs
            ]
        else:
            self.params = [
                generate_params(s, fault_seed=fault_seed) for s in (seeds or ())
            ]

    def run(self, jobs: int = 1) -> FuzzReport:
        from ..parallel import run_tasks

        outcomes = run_tasks(
            [(run_scenario, (p,)) for p in self.params], jobs=jobs
        )
        report = FuzzReport()
        report.results.extend(outcomes)
        return report
