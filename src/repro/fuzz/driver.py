"""Build a runnable multithreaded program from :class:`ScenarioParams`.

``build_scenario`` is a *pure function* of its params (array contents,
kernel templates, chunking, prefetch plan — everything derives from
``params.seed``), which is what lets the differ rebuild the identical
program on a fresh machine for every axis and lets the shrinker re-run
reduced variants.

Every generated program is race-free by construction — threads write
disjoint elements (dest chunks, private result slots, private histogram
slabs, per-row gather outputs) and shared reads are read-only — so the
bit-equality contract holds regardless of thread interleaving.  Reads
*may* cross chunk boundaries (stencil shifts, shared cache lines), which
is exactly the sharing COBRA's rewrites act on.
"""

from __future__ import annotations

import random

import numpy as np

from ..compiler.kernels import (
    ComputeLoop,
    GatherLoop,
    HistogramLoop,
    IntSumLoop,
    ReduceLoop,
    StreamLoop,
    Term,
)
from ..compiler.prefetch import PrefetchPlan
from ..config import itanium2_smp, sgi_altix
from ..cpu.machine import Machine
from ..runtime.team import ParallelProgram, static_chunks
from .generator import ScenarioParams

__all__ = ["scenario_machine", "scenario_plan", "build_scenario", "FUZZ_SCALE"]

#: Machine scale for fuzz scenarios: small caches keep runs fast while
#: the 128-byte line (never scaled) keeps sharing geometry realistic.
FUZZ_SCALE = 4

#: COBRA runs with shortened intervals so the tiny generated programs
#: actually sample, wake the optimizer, and deploy rewrites.
_FUZZ_COBRA = dict(sampling_interval=300, optimize_interval=3_000)

#: Candidate coefficients for stream terms — exactly representable in
#: binary so the NumPy cross-checks in tests stay bit-exact.
_COEFS = (1.0, 0.5, -0.25, 2.0, 0.75, -1.5, 0.125, -2.0)


def scenario_machine(params: ScenarioParams) -> Machine:
    """A fresh machine for one axis run of ``params``."""
    if params.machine_kind == "altix":
        config = sgi_altix(params.n_threads, scale=FUZZ_SCALE)
    else:
        config = itanium2_smp(params.n_threads, scale=FUZZ_SCALE)
    return Machine(config.with_cobra(**_FUZZ_COBRA))


def scenario_plan(params: ScenarioParams) -> PrefetchPlan:
    return PrefetchPlan(
        distance_lines=params.prefetch_distance,
        conditional=params.conditional_prefetch,
        multiversion=params.multiversion,
        prologue_per_stream=None if params.prologue_prefetch else 0,
    )


def _knob_rng(params: ScenarioParams) -> random.Random:
    # distinct stream from generate_params' draws so shrunk params
    # (which bypass generate_params) rebuild identically
    return random.Random((params.seed << 1) ^ 0x5EED)


def _term_specs(params: ScenarioParams, count: int) -> list[tuple[float, int]]:
    """(coef, shift) pairs — prefix-stable and span-monotone so the
    shrinker's reduced params stay a sub-scenario of the original."""
    rng = _knob_rng(params)
    out = []
    for _ in range(count):
        coef = rng.choice(_COEFS)
        raw = rng.randint(-4, 4)
        shift = max(-params.shift_span, min(params.shift_span, raw))
        out.append((coef, shift))
    return out


def build_scenario(params: ScenarioParams, machine: Machine) -> ParallelProgram:
    """Compile + link ``params`` into a built program on ``machine``."""
    prog = ParallelProgram(machine, f"fz{params.seed}")
    plan = scenario_plan(params)
    data = np.random.default_rng(params.seed)
    n = params.n
    builder = _BUILDERS[params.loop_class]
    builder(params, prog, plan, data, n)
    prog.build(outer_reps=params.reps)
    return prog


# -- per-class builders ------------------------------------------------------


def _build_stream(params, prog, plan, data, n):
    halo = params.shift_span + 16
    padded = n + 2 * halo
    specs = _term_specs(params, params.n_terms)
    terms = tuple(
        Term(f"s{j}", coef, shift) for j, (coef, shift) in enumerate(specs)
    )
    for j in range(params.n_terms):
        prog.array(f"s{j}", padded, data.uniform(0.5, 1.5, padded))
    prog.array("d", padded, np.zeros(padded))
    fn = prog.kernel(StreamLoop(f"fz{params.seed}_stream", dest="d", terms=terms), plan)
    prog.region(
        [
            prog.make_call(fn, halo + start, count) if count else None
            for start, count in static_chunks(n, params.n_threads)
        ]
    )


def _build_reduce(params, prog, plan, data, n):
    prog.array("a", n, data.uniform(0.5, 1.5, n))
    prog.array("b", n, data.uniform(0.5, 1.5, n))
    # adjacent per-thread result slots: the classic false-sharing site
    prog.array("__res", params.n_threads + 16)
    res = prog.arrays["__res"]
    src_b = "b" if params.n_terms % 2 == 0 else None
    fn = prog.kernel(ReduceLoop(f"fz{params.seed}_red", src_a="a", src_b=src_b), plan)
    prog.region(
        [
            prog.make_call(fn, start, count, raw={"result": res.addr(tid)})
            if count
            else None
            for tid, (start, count) in enumerate(static_chunks(n, params.n_threads))
        ]
    )


def _build_gather(params, prog, plan, data, n):
    depth = params.nest_depth
    prog.int_array("ptr", n + 1, np.arange(n + 1, dtype=np.int64) * depth)
    prog.int_array("col", n * depth, data.integers(0, n, n * depth).astype(np.int64))
    prog.array("av", n * depth, data.uniform(0.01, 0.1, n * depth))
    prog.array("x", n, data.uniform(0.5, 1.5, n))
    prog.array("y", n, np.zeros(n))
    fn = prog.kernel(
        GatherLoop(f"fz{params.seed}_gat", ptr="ptr", col="col", val="av", x="x", y="y"),
        plan,
    )
    prog.parallel_for(fn, n, params.n_threads)


def _build_histogram(params, prog, plan, data, n):
    # an odd-line slab stride puts adjacent threads' private histograms
    # on a shared 128-byte line; a multiple of 16 keeps them private
    n_bins = 24 if params.share_boundary else 32
    prog.int_array("key", n, data.integers(0, n_bins, n).astype(np.int64))
    prog.int_array("hist", n_bins * params.n_threads + 16)
    prog.int_array("total", n_bins)
    hist = prog.arrays["hist"]
    h_fn = prog.kernel(HistogramLoop(f"fz{params.seed}_hist", key="key", cnt="hist"), plan)
    prog.region(
        [
            prog.make_call(h_fn, start, count, raw={"hist": hist.addr(n_bins * tid)})
            if count
            else None
            for tid, (start, count) in enumerate(static_chunks(n, params.n_threads))
        ]
    )
    m_fn = prog.kernel(
        IntSumLoop(
            f"fz{params.seed}_merge",
            dest="total",
            sources=tuple(("hist", n_bins * t) for t in range(params.n_threads)),
        ),
        plan,
    )
    prog.parallel_for(m_fn, n_bins, params.n_threads)


def _build_intsum(params, prog, plan, data, n):
    halo = params.shift_span + 16
    padded = n + 2 * halo
    k = min(params.n_terms, 6)
    specs = _term_specs(params, k)
    for j in range(k):
        prog.int_array(f"i{j}", padded, data.integers(0, 1 << 20, padded).astype(np.int64))
    prog.int_array("di", padded)
    fn = prog.kernel(
        IntSumLoop(
            f"fz{params.seed}_isum",
            dest="di",
            sources=tuple((f"i{j}", shift) for j, (_c, shift) in enumerate(specs)),
        ),
        plan,
    )
    prog.region(
        [
            prog.make_call(fn, halo + start, count) if count else None
            for start, count in static_chunks(n, params.n_threads)
        ]
    )


def _build_compute(params, prog, plan, data, n):
    flops = max(1, min(16, params.n_terms))
    c_fn = prog.kernel(ComputeLoop(f"fz{params.seed}_fp", flops_per_iter=flops))
    prog.region(
        [prog.make_call(c_fn, 0, params.chunk) for _ in range(params.n_threads)]
    )
    # a small store sweep alongside the register-only work so the digest
    # observes execution (ComputeLoop itself never touches memory)
    prog.array("s0", n, data.uniform(0.5, 1.5, n))
    prog.array("d", n, np.zeros(n))
    s_fn = prog.kernel(
        StreamLoop(f"fz{params.seed}_out", dest="d", terms=(Term("s0", 0.5, 0),)), plan
    )
    prog.parallel_for(s_fn, n, params.n_threads)


_BUILDERS = {
    "stream": _build_stream,
    "reduce": _build_reduce,
    "gather": _build_gather,
    "histogram": _build_histogram,
    "intsum": _build_intsum,
    "compute": _build_compute,
}
