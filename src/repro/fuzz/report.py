"""Structured fuzz outcomes and the deterministic report.

The report contains no timestamps, paths, or timing — its ``summary()``
bytes depend only on the scenario outcomes, which is what makes
``repro fuzz --jobs 1`` and ``--jobs 8`` byte-identical (the same
contract the differential and chaos harnesses keep).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .generator import ScenarioParams, describe

__all__ = ["Divergence", "ScenarioResult", "FuzzReport", "repro_command"]


def repro_command(seed: int, fault_seed: int) -> str:
    """The minimized replay command for one divergence."""
    return f"python -m repro fuzz --replay {seed} --fault-seed {fault_seed}"


@dataclass(frozen=True)
class Divergence:
    """One broken bit-equality between two axes of one scenario."""

    seed: int
    fault_seed: int
    axis: str        # e.g. "adaptive vs none", "jit-off vs jit-on"
    observable: str  # "digest", "cycles", "samples", "exception", ...
    expected: str
    actual: str

    def describe(self) -> str:
        return (
            f"seed={self.seed} fault_seed={self.fault_seed} [{self.axis}] "
            f"{self.observable}: expected {self.expected}, got {self.actual}"
        )


@dataclass(frozen=True)
class ScenarioResult:
    """Outcome of one scenario's full axis sweep (picklable)."""

    params: ScenarioParams
    digests: tuple[tuple[str, str], ...]       # (axis, digest) in run order
    divergences: tuple[Divergence, ...]
    samples: int = 0        # HPM samples captured on the adaptive axis
    compiles: int = 0       # trace-JIT compiles on the adaptive axis
    tree_links: int = 0     # compiled-to-compiled exit handoffs (adaptive)

    @property
    def ok(self) -> bool:
        return not self.divergences

    def line(self) -> str:
        status = "OK" if self.ok else f"FAIL({len(self.divergences)})"
        return (
            f"fuzz[seed={self.params.seed}] {describe(self.params)}: "
            f"{len(self.digests)} axes, {status}"
        )


@dataclass
class FuzzReport:
    """Outcome of one fuzzing sweep, merged in submission order."""

    results: list[ScenarioResult] = field(default_factory=list)

    @property
    def divergences(self) -> list[Divergence]:
        return [d for r in self.results for d in r.divergences]

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.results)

    def summary(self, verbose: bool = True) -> str:
        n_div = len(self.divergences)
        lines = [
            f"fuzz: {len(self.results)} scenario(s), "
            f"{sum(len(r.digests) for r in self.results)} differential run(s), "
            f"{n_div} divergence(s), {'OK' if self.ok else 'FAIL'}"
        ]
        for result in self.results:
            if verbose or not result.ok:
                lines.append(f"  {result.line()}")
            for div in result.divergences:
                lines.append(f"    DIVERGENCE {div.describe()}")
                lines.append(f"    repro: {repro_command(div.seed, div.fault_seed)}")
        return "\n".join(lines)

    def to_json(self) -> dict:
        return {
            "ok": self.ok,
            "scenarios": [
                {
                    "seed": r.params.seed,
                    "fault_seed": r.params.fault_seed,
                    "description": describe(r.params),
                    "digests": dict(r.digests),
                    "samples": r.samples,
                    "compiles": r.compiles,
                    "tree_links": r.tree_links,
                    "divergences": [
                        {
                            "axis": d.axis,
                            "observable": d.observable,
                            "expected": d.expected,
                            "actual": d.actual,
                            "repro": repro_command(d.seed, d.fault_seed),
                        }
                        for d in r.divergences
                    ],
                }
                for r in self.results
            ],
        }
