"""Seeded differential fuzzing of the compiler + runtime + optimizer stack.

``repro.fuzz`` samples the :mod:`repro.compiler.kernels` template space
into small, deterministic multithreaded scenarios and executes each one
across every axis that must agree bit-for-bit:

* adaptive COBRA vs no runtime optimization at all,
* trace-JIT enabled vs disabled,
* faulted (seeded ``repro.faults`` schedule) vs clean,
* checkpoint / crash / resume vs straight-through.

Any disagreement is a *divergence* and reproduces from two integers —
the ``(generator_seed, fault_seed)`` pair printed in the report.
"""

from .generator import ScenarioParams, generate_params
from .driver import build_scenario, scenario_machine
from .differ import DifferentialFuzzer, run_scenario
from .shrinker import shrink
from .report import Divergence, FuzzReport, ScenarioResult

__all__ = [
    "ScenarioParams",
    "generate_params",
    "build_scenario",
    "scenario_machine",
    "DifferentialFuzzer",
    "run_scenario",
    "shrink",
    "Divergence",
    "FuzzReport",
    "ScenarioResult",
]
