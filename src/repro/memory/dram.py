"""Simulated physical memory: data storage, allocation, NUMA placement.

One flat backing store holds the program's data.  Words are 8 bytes;
the same buffer is viewed as both ``int64`` and ``float64`` (like real
memory, a float store read back as an integer yields the bit pattern).

For cc-NUMA machines the memory system also assigns pages to home nodes
with the SGI Altix *first-touch* policy the paper describes: a page is
pinned to the node of the first CPU that touches it (§3.2).
"""

from __future__ import annotations

import numpy as np

from ..errors import MemoryError_
from .address import PAGE_SHIFT

__all__ = ["Allocation", "MemorySystem", "DATA_BASE"]

#: Base byte address of the simulated data segment.
DATA_BASE = 0x8000_0000

_WORD = 8


class Allocation:
    """A named, line-aligned region of the data segment."""

    __slots__ = ("name", "base", "nbytes")

    def __init__(self, name: str, base: int, nbytes: int) -> None:
        self.name = name
        self.base = base
        self.nbytes = nbytes

    @property
    def end(self) -> int:
        return self.base + self.nbytes

    @property
    def n_words(self) -> int:
        return self.nbytes // _WORD

    def addr(self, index: int) -> int:
        """Byte address of 8-byte element ``index``."""
        return self.base + index * _WORD

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Allocation {self.name} @{self.base:#x} {self.nbytes}B>"


class MemorySystem:
    """Backing store + bump allocator + first-touch page homes."""

    def __init__(self, capacity_bytes: int = 8 << 20, align: int = 128) -> None:
        if capacity_bytes % _WORD:
            raise MemoryError_("capacity must be word-aligned")
        self.capacity = capacity_bytes
        self._i64 = np.zeros(capacity_bytes // _WORD, dtype=np.int64)
        self._f64 = self._i64.view(np.float64)
        self._align = align
        self._next = DATA_BASE
        self.allocations: dict[str, Allocation] = {}
        #: page id -> home node id (first touch)
        self.page_home: dict[int, int] = {}

    # -- allocation -------------------------------------------------------

    def alloc(self, name: str, nbytes: int) -> Allocation:
        """Reserve a line-aligned region; zero-filled."""
        if name in self.allocations:
            raise MemoryError_(f"allocation {name!r} already exists")
        if nbytes <= 0:
            raise MemoryError_("allocation size must be positive")
        nbytes = -(-nbytes // self._align) * self._align
        base = self._next
        if base + nbytes > DATA_BASE + self.capacity:
            raise MemoryError_(
                f"out of simulated memory ({nbytes} B requested, "
                f"{DATA_BASE + self.capacity - base} B free)"
            )
        self._next += nbytes
        alloc = Allocation(name, base, nbytes)
        self.allocations[name] = alloc
        return alloc

    def _index(self, addr: int) -> int:
        off = addr - DATA_BASE
        if off < 0 or off >= self.capacity:
            raise MemoryError_(f"address {addr:#x} outside the data segment")
        if off % _WORD:
            raise MemoryError_(f"unaligned 8-byte access at {addr:#x}")
        return off // _WORD

    # -- data access (functional correctness; timing lives in the caches) --
    # The index arithmetic is inlined here (these run once per simulated
    # memory instruction); _index keeps the precise error reporting.

    def read_f64(self, addr: int) -> float:
        off = addr - DATA_BASE
        if off < 0 or off >= self.capacity or off & 7:
            self._index(addr)
        return float(self._f64[off >> 3])

    def write_f64(self, addr: int, value: float) -> None:
        off = addr - DATA_BASE
        if off < 0 or off >= self.capacity or off & 7:
            self._index(addr)
        self._f64[off >> 3] = value

    def read_i64(self, addr: int) -> int:
        off = addr - DATA_BASE
        if off < 0 or off >= self.capacity or off & 7:
            self._index(addr)
        return int(self._i64[off >> 3])

    def write_i64(self, addr: int, value: int) -> None:
        off = addr - DATA_BASE
        if off < 0 or off >= self.capacity or off & 7:
            self._index(addr)
        # wrap to signed 64-bit two's complement
        self._i64[off >> 3] = ((value + (1 << 63)) % (1 << 64)) - (1 << 63)

    def view_f64(self, alloc: Allocation) -> np.ndarray:
        """Writable float64 view of an allocation (bulk init / checks)."""
        start = self._index(alloc.base)
        return self._f64[start : start + alloc.n_words]

    def view_i64(self, alloc: Allocation) -> np.ndarray:
        start = self._index(alloc.base)
        return self._i64[start : start + alloc.n_words]

    # -- NUMA first-touch ----------------------------------------------------

    def home_node(self, addr: int, toucher_node: int) -> int:
        """Home node of the page containing ``addr``.

        Implements first-touch: an untouched page is pinned to
        ``toucher_node``.
        """
        page = addr >> PAGE_SHIFT
        home = self.page_home.get(page)
        if home is None:
            home = toucher_node
            self.page_home[page] = home
        return home

    def place_pages(self, alloc: Allocation, node: int) -> None:
        """Pin all of an allocation's pages to ``node`` (explicit placement)."""
        for page in range(alloc.base >> PAGE_SHIFT, ((alloc.end - 1) >> PAGE_SHIFT) + 1):
            self.page_home[page] = node
