"""Address arithmetic helpers.

Data addresses are byte addresses.  Cache state is tracked at line
granularity using integer *line ids* (``addr >> line_shift``); NUMA
first-touch placement works at page granularity (``addr >> page_shift``).
"""

from __future__ import annotations

from ..config import LINE_SIZE, PAGE_SIZE

__all__ = [
    "LINE_SHIFT",
    "PAGE_SHIFT",
    "line_of",
    "page_of",
    "line_base",
    "lines_spanned",
]

LINE_SHIFT = LINE_SIZE.bit_length() - 1
PAGE_SHIFT = PAGE_SIZE.bit_length() - 1

assert (1 << LINE_SHIFT) == LINE_SIZE, "line size must be a power of two"
assert (1 << PAGE_SHIFT) == PAGE_SIZE, "page size must be a power of two"


def line_of(addr: int) -> int:
    """Line id containing byte address ``addr``."""
    return addr >> LINE_SHIFT


def page_of(addr: int) -> int:
    """Page id containing byte address ``addr``."""
    return addr >> PAGE_SHIFT


def line_base(line: int) -> int:
    """First byte address of line id ``line``."""
    return line << LINE_SHIFT


def lines_spanned(addr: int, nbytes: int) -> range:
    """Line ids touched by the byte range ``[addr, addr + nbytes)``."""
    if nbytes <= 0:
        return range(0)
    return range(addr >> LINE_SHIFT, ((addr + nbytes - 1) >> LINE_SHIFT) + 1)
