"""Set-associative cache tag array with LRU replacement.

This class tracks only *presence* (which line ids are cached and in
which set); the MESI state of a line lives in the owning
:class:`~repro.memory.hierarchy.CpuCacheSystem`, because on Itanium 2
the L2 and L3 of one CPU hold a line in a single coherence state.

Dicts preserve insertion order, so each set is a dict used as an LRU
queue: a hit re-inserts the line at the back; the victim is the front.
"""

from __future__ import annotations

from ..config import CacheConfig

__all__ = ["CacheArray"]


class CacheArray:
    """Tags of one cache level, LRU per set, keyed by line id."""

    __slots__ = ("n_sets", "associativity", "_sets", "_present")

    def __init__(self, config: CacheConfig) -> None:
        self.n_sets = config.n_sets
        self.associativity = config.associativity
        self._sets: list[dict[int, None]] = [dict() for _ in range(self.n_sets)]
        self._present: set[int] = set()

    def __contains__(self, line: int) -> bool:
        return line in self._present

    def __len__(self) -> int:
        return len(self._present)

    def touch(self, line: int) -> bool:
        """LRU-promote ``line``; return whether it was present."""
        if line not in self._present:
            return False
        s = self._sets[line % self.n_sets]
        del s[line]
        s[line] = None
        return True

    def insert(self, line: int) -> int | None:
        """Insert ``line``; return the evicted line id, if any.

        Inserting a line that is already present just LRU-promotes it
        and evicts nothing.
        """
        s = self._sets[line % self.n_sets]
        if line in self._present:
            del s[line]
            s[line] = None
            return None
        victim: int | None = None
        if len(s) >= self.associativity:
            victim = next(iter(s))
            del s[victim]
            self._present.discard(victim)
        s[line] = None
        self._present.add(line)
        return victim

    def remove(self, line: int) -> bool:
        """Drop ``line`` (invalidation); return whether it was present."""
        if line not in self._present:
            return False
        del self._sets[line % self.n_sets][line]
        self._present.discard(line)
        return True

    def lines(self) -> set[int]:
        """Snapshot of all resident line ids."""
        return set(self._present)

    def clear(self) -> None:
        for s in self._sets:
            s.clear()
        self._present.clear()
