"""Per-CPU cache hierarchy (private L2 + L3, one MESI state per line).

On Itanium 2 both the 256 KB L2 and the 3 MB L3 are private, and a line
is held by a CPU in a single coherence state, so the hierarchy keeps

* ``state`` — line id -> MESI state (absence = Invalid),
* ``l2`` / ``l3`` — tag arrays with ``l2 ⊆ l3`` (inclusion, enforced on
  every eviction and invalidation),
* ``l2_dirty`` — lines whose L2 copy is ahead of L3 (their L2 eviction
  is a dirty drain, the paper's "writebacks in L2").

``access`` returns the stall cycles charged to the issuing instruction:
loads stall for the full miss latency, stores are buffered
(``store_factor``), prefetches never stall (their cost is bus occupancy
and the coherence side effects they trigger).

``lfetch.excl`` allocates the line in E and marks it for *cast-out*:
its eviction writes back even if it was never stored to.  This models
the paper's observation that exclusive prefetching "could increase the
number of writebacks in L2 [and] result in longer latency for the store
instructions" while keeping the line coherence-clean, so the upgrades it
performs on behalf of later stores happen in the background.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..config import LatencyConfig, MachineConfig
from .address import LINE_SHIFT
from .cache import CacheArray
from .coherence import EXCLUSIVE, MODIFIED, SHARED
from .events import MemEvents

if TYPE_CHECKING:  # pragma: no cover
    from .bus import SnoopBus

__all__ = ["CpuCacheSystem", "LOAD", "STORE", "PREFETCH", "PREFETCH_EXCL", "LOAD_BIAS", "ATOMIC"]

LOAD = 0
STORE = 1
PREFETCH = 2
PREFETCH_EXCL = 3
LOAD_BIAS = 4
ATOMIC = 5


class CpuCacheSystem:
    """All cache state of one CPU, attached to a coherent fabric."""

    __slots__ = (
        "cpu_id",
        "node_id",
        "l2",
        "l3",
        "state",
        "l2_dirty",
        "excl_alloc",
        "events",
        "fabric",
        "validator",
        "lat",
        "_sf",
        "_occ_data",
        "_occ_ctrl",
        "dear_threshold",
        "dear_pending",
        "access_fn",
        "_l2_sets",
        "_l2_nsets",
        "_l2_hit",
    )

    def __init__(self, cpu_id: int, node_id: int, config: MachineConfig, fabric) -> None:
        self.cpu_id = cpu_id
        self.node_id = node_id
        self.l2 = CacheArray(config.l2)
        self.l3 = CacheArray(config.l3)
        self.state: dict[int, int] = {}
        self.l2_dirty: set[int] = set()
        # lines allocated by lfetch.excl: cast out (written back) on
        # eviction even if never stored to — the paper's "increase the
        # number of writebacks" effect (§2, §4)
        self.excl_alloc: set[int] = set()
        self.events = MemEvents()
        self.fabric = fabric
        self.lat: LatencyConfig = config.latency
        self._sf = config.latency.store_factor
        self._occ_data = config.bus.occupancy_data
        self._occ_ctrl = config.bus.occupancy_ctrl
        # DEAR capture: protocol latency of the last qualifying access
        # (set here because the store-buffered *stall* understates the
        # latency the PMU reports; the core attaches the faulting PC)
        self.dear_threshold = 1 << 30
        self.dear_pending: int | None = None
        # optional invariant checker (repro.validate); None on the hot path
        self.validator = None
        # Hot-path entry point the cores call.  Bound to ``_access`` while
        # no validator is attached (skipping the wrapper's per-call check)
        # and rebound to ``access`` by ``set_validator``.
        self.access_fn = self._access
        # L2 set dicts hoisted for the hit fast path in _access; reads
        # the live tag array, so snoops and evictions need no hooks
        self._l2_nsets = self.l2.n_sets
        self._l2_sets = self.l2._sets
        self._l2_hit = config.latency.l2_hit
        fabric.attach(self)

    def set_validator(self, validator) -> None:
        """Attach/detach an invariant checker, rebinding the hot path."""
        self.validator = validator
        self.access_fn = self._access if validator is None else self.access

    # -- main access path ---------------------------------------------------

    def access(self, now: int, addr: int, kind: int) -> int:
        """Simulate one data access; return stall cycles.

        When a validator is attached it observes the completed access —
        after every coherence side effect, including fills and forced
        evictions — so it can check the global line state.
        """
        validator = self.validator
        if validator is None:
            return self._access(now, addr, kind)
        stall = self._access(now, addr, kind)
        validator.after_access(self, addr >> LINE_SHIFT, kind)
        return stall

    def _access(self, now: int, addr: int, kind: int) -> int:
        line = addr >> LINE_SHIFT

        # L2-hit fast path against the tag array's own set dict: L2
        # residency implies a tracked coherence state (L2 ⊆ L3), so the
        # full path below would charge exactly ``l2_hit`` and make
        # exactly the transitions replicated here; the del/re-insert is
        # ``l2.touch``'s LRU promotion inlined.  SHARED stores (bus
        # upgrade) and non-MODIFIED lfetch.excl (ownership/alloc
        # bookkeeping) still take the full path.
        lru = self._l2_sets[line % self._l2_nsets]
        if line in lru:
            if kind == LOAD:
                self.events.loads += 1
                del lru[line]
                lru[line] = None
                return self._l2_hit
            if kind == STORE:
                st = self.state[line]
                if st != SHARED:
                    self.events.stores += 1
                    if st != MODIFIED:
                        self.state[line] = MODIFIED
                    self.l2_dirty.add(line)
                    del lru[line]
                    lru[line] = None
                    return self._l2_hit
            elif kind == PREFETCH:
                self.events.prefetches += 1
                del lru[line]
                lru[line] = None
                return 0
            elif kind == PREFETCH_EXCL and self.state[line] == MODIFIED:
                self.events.prefetches += 1
                del lru[line]
                lru[line] = None
                return 0

        ev = self.events
        lat = self.lat
        st = self.state.get(line)

        if kind == LOAD:
            ev.loads += 1
            if st is not None:
                if self.l2.touch(line):
                    return lat.l2_hit
                ev.l2_misses += 1
                return lat.l3_hit + self._promote(line)
            ev.l2_misses += 1
            ev.l3_misses += 1
            wait, latency, install = self.fabric.read(now, self, line)
            if latency > self.dear_threshold:
                self.dear_pending = latency
            return wait + latency + self._install(now, line, install)

        if kind == STORE:
            ev.stores += 1
            if st is not None:
                extra = 0
                if st == SHARED:
                    wait, latency = self.fabric.upgrade(now, self, line)
                    extra = wait + int(latency * self._sf)
                    if latency > self.dear_threshold:
                        self.dear_pending = latency
                self.state[line] = MODIFIED
                self.l2_dirty.add(line)
                if self.l2.touch(line):
                    return lat.l2_hit + extra
                ev.l2_misses += 1
                return lat.l3_hit + extra + self._promote(line)
            ev.l2_misses += 1
            ev.l3_misses += 1
            wait, latency, _ = self.fabric.read_excl(now, self, line)
            if latency > self.dear_threshold:
                self.dear_pending = latency
            stall = wait + int(latency * self._sf)
            stall += self._install(now, line, MODIFIED)
            self.l2_dirty.add(line)
            return stall

        if kind == PREFETCH:
            ev.prefetches += 1
            if st is not None:
                if not self.l2.touch(line):
                    # the promote may force a dirty L2 drain whose
                    # write-buffer backpressure the core still feels
                    return self._promote(line)
                return 0
            ev.l2_misses += 1
            ev.l3_misses += 1
            wait, _, _ = self.fabric.read(now, self, line)
            # a plain lfetch brings the line in "the usual shared state"
            # (paper §1), not E — so a later store still pays an upgrade.
            extra = self._install(now, line, SHARED)
            # non-blocking, but the request port / MSHRs back-pressure the
            # core at the bus bandwidth (issue cost = queue wait + occupancy)
            return wait + self._occ_data + extra

        if kind == PREFETCH_EXCL:
            ev.prefetches += 1
            if st is not None:
                cost = 0
                if st == SHARED:
                    # acquire ownership in the background (bus traffic,
                    # issue cost only — the store it covers won't stall)
                    wait, _ = self.fabric.upgrade(now, self, line)
                    cost = wait + self._occ_ctrl
                    self.state[line] = EXCLUSIVE
                    self.l2_dirty.add(line)
                    self.excl_alloc.add(line)
                elif st == EXCLUSIVE:
                    self.l2_dirty.add(line)
                    self.excl_alloc.add(line)
                if not self.l2.touch(line):
                    cost += self._promote(line)
                return cost
            ev.l2_misses += 1
            ev.l3_misses += 1
            wait, _, _ = self.fabric.read_excl(now, self, line)
            extra = self._install(now, line, EXCLUSIVE)
            self.l2_dirty.add(line)
            self.excl_alloc.add(line)
            return wait + self._occ_data + extra

        if kind == ATOMIC:
            # fetchadd8: read-modify-write, fully serializing (no store buffer)
            ev.loads += 1
            ev.stores += 1
            if st is not None:
                extra = 0
                if st == SHARED:
                    wait, latency = self.fabric.upgrade(now, self, line)
                    extra = wait + latency
                self.state[line] = MODIFIED
                self.l2_dirty.add(line)
                if self.l2.touch(line):
                    return lat.l2_hit + extra
                ev.l2_misses += 1
                return lat.l3_hit + extra + self._promote(line)
            ev.l2_misses += 1
            ev.l3_misses += 1
            wait, latency, _ = self.fabric.read_excl(now, self, line)
            stall = wait + latency + self._install(now, line, MODIFIED)
            self.l2_dirty.add(line)
            return stall

        # LOAD_BIAS: ld8.bias — a load that requests exclusive ownership
        ev.loads += 1
        if st is not None:
            extra = 0
            if st == SHARED:
                wait, latency = self.fabric.upgrade(now, self, line)
                extra = wait + latency
                self.state[line] = MODIFIED
                self.l2_dirty.add(line)
            if self.l2.touch(line):
                return lat.l2_hit + extra
            ev.l2_misses += 1
            return lat.l3_hit + extra + self._promote(line)
        ev.l2_misses += 1
        ev.l3_misses += 1
        wait, latency, _ = self.fabric.read_excl(now, self, line)
        stall = wait + latency + self._install(now, line, MODIFIED)
        self.l2_dirty.add(line)
        return stall

    # -- fills and evictions ---------------------------------------------

    def _promote(self, line: int) -> int:
        """Bring an L3-resident line into L2; return extra drain cycles."""
        victim = self.l2.insert(line)
        if victim is not None and victim in self.l2_dirty:
            self.l2_dirty.discard(victim)
            self.events.l2_writebacks += 1
            return self.lat.l2_writeback
        return 0

    def _install(self, now: int, line: int, st: int) -> int:
        """Fill a missing line into L3+L2 with state ``st``.

        Returns extra cycles charged for evictions forced by the fill.
        """
        extra = 0
        victim3 = self.l3.insert(line)
        if victim3 is not None:
            vstate = self.state.pop(victim3, None)
            self.l2.remove(victim3)
            self.l2_dirty.discard(victim3)
            wrote_back = False
            if vstate == MODIFIED:
                extra += self.fabric.writeback(now, self, victim3)
                wrote_back = True
            elif vstate == EXCLUSIVE and victim3 in self.excl_alloc:
                # cast-out of an exclusively-prefetched (never stored) line
                extra += self.fabric.writeback(now, self, victim3)
                wrote_back = True
            self.excl_alloc.discard(victim3)
            if self.validator is not None:
                self.validator.on_evict(self, victim3, vstate, wrote_back)
        victim2 = self.l2.insert(line)
        if victim2 is not None and victim2 in self.l2_dirty:
            self.l2_dirty.discard(victim2)
            self.events.l2_writebacks += 1
            extra += self.lat.l2_writeback
        self.state[line] = st
        return extra

    # -- snooping (called by the fabric on behalf of other CPUs) -----------

    def snoop_read(self, line: int) -> int:
        """Remote shared read.  M -> S (+writeback), E -> S.

        Returns the prior state (0 if not present).
        """
        st = self.state.get(line)
        if st is None:
            return 0
        if st == MODIFIED:
            self.state[line] = SHARED
            self.l2_dirty.discard(line)
            self.events.writebacks += 1
            return MODIFIED
        if st == EXCLUSIVE:
            self.state[line] = SHARED
            self.excl_alloc.discard(line)
            return EXCLUSIVE
        return SHARED

    def snoop_invalidate(self, line: int) -> int:
        """Remote RFO/upgrade.  Drop the line; return the prior state."""
        st = self.state.pop(line, None)
        if st is None:
            return 0
        self.l3.remove(line)
        self.l2.remove(line)
        self.l2_dirty.discard(line)
        self.excl_alloc.discard(line)
        self.events.invalidations_received += 1
        if st == MODIFIED:
            self.events.writebacks += 1
        return st

    # -- introspection -------------------------------------------------------

    def state_of(self, line: int) -> int | None:
        return self.state.get(line)

    def check_inclusion(self) -> None:
        """Assert structural invariants (used by property tests)."""
        l2_lines = self.l2.lines()
        l3_lines = self.l3.lines()
        assert l2_lines <= l3_lines, "L2 must be a subset of L3"
        assert set(self.state) == l3_lines, "state map must mirror L3 tags"
        assert self.l2_dirty <= l2_lines, "dirty set must be L2-resident"
        assert self.excl_alloc <= l3_lines, "excl-alloc set must be cached"
