"""Per-CPU memory-system event counters.

These are the raw event sources behind the simulated PMU: the
:mod:`repro.hpm` layer maps Itanium 2 event names (``BUS_MEMORY``,
``BUS_RD_HITM``, ...) onto these fields.  Slotted ints keep the hot
path cheap.
"""

from __future__ import annotations

__all__ = ["MemEvents"]


class MemEvents:
    """Counters for one CPU's memory traffic."""

    __slots__ = (
        "loads",
        "stores",
        "prefetches",
        "l2_misses",
        "l3_misses",
        "l2_writebacks",
        "writebacks",
        "bus_memory",
        "bus_rd_hit",
        "bus_rd_hitm",
        "bus_rd_inval",
        "bus_rd_inval_hitm",
        "upgrades",
        "coherent_misses",
        "invalidations_received",
    )

    def __init__(self) -> None:
        for name in self.__slots__:
            setattr(self, name, 0)

    def snapshot(self) -> dict[str, int]:
        """Copy all counters into a plain dict."""
        return {name: getattr(self, name) for name in self.__slots__}

    def coherent_bus_events(self) -> int:
        """Snoop responses + invalidations — the paper's numerator for
        the coherent-access ratio (§4)."""
        return self.bus_rd_hit + self.bus_rd_hitm + self.bus_rd_inval

    def coherent_ratio(self) -> float:
        """Coherent bus events / all bus transactions (paper §4)."""
        if self.bus_memory == 0:
            return 0.0
        return self.coherent_bus_events() / self.bus_memory

    def add(self, other: "MemEvents") -> None:
        """Accumulate ``other`` into ``self`` (system-wide aggregation)."""
        for name in self.__slots__:
            setattr(self, name, getattr(self, name) + getattr(other, name))

    def delta(self, earlier: dict[str, int]) -> dict[str, int]:
        """Difference between the current counters and a snapshot."""
        return {name: getattr(self, name) - earlier[name] for name in self.__slots__}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        inner = ", ".join(f"{k}={v}" for k, v in self.snapshot().items() if v)
        return f"<MemEvents {inner}>"
