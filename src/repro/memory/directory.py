"""Directory-based cc-NUMA fabric (the SGI Altix model).

Nodes hold two CPUs on a local front-side bus; nodes are joined by a
fat-tree interconnect.  Coherence is directory-style: a miss consults
the home node of the line's page (assigned by first touch, §3.2 of the
paper) and, when a remote cache owns the line dirty, performs a
three-hop cache-to-cache transfer.  This is why "the penalty of coherent
misses is much higher on cc-NUMA machines than that on SMP machines"
(§5.2.1) — and why COBRA's optimizations gain more on the Altix.

The directory content is derived by querying the attached cache
hierarchies (the simulator is sequential, so the query is exact); the
*latency* model follows the protocol message flow:

* local clean miss: ``memory``;
* remote clean miss: ``remote_memory`` (requester -> home -> requester);
* dirty in a cache on the requester's node: ``cache_to_cache``;
* dirty in a remote cache: ``remote_cache_to_cache``;
* invalidations crossing the interconnect add ``interconnect_hop`` each.

Bus occupancy is charged on the requester's node bus and, when
different, the home node bus, so heavy prefetch traffic from one node
delays the other nodes' demand misses at their shared home memories.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..config import BusConfig, LatencyConfig
from .address import LINE_SHIFT
from .coherence import EXCLUSIVE, MODIFIED, SHARED
from .dram import MemorySystem

if TYPE_CHECKING:  # pragma: no cover
    from .hierarchy import CpuCacheSystem

__all__ = ["DirectoryFabric"]


class DirectoryFabric:
    """Coherent fabric for multi-node machines."""

    def __init__(
        self,
        n_nodes: int,
        config: BusConfig,
        latency: LatencyConfig,
        memory: MemorySystem,
    ) -> None:
        self.n_nodes = n_nodes
        self.config = config
        self.latency = latency
        self.memory = memory
        self.caches: list["CpuCacheSystem"] = []
        self._busy = [0] * n_nodes
        self.total_transactions = 0
        self.total_queue_cycles = 0
        self._occ_data = config.occupancy_data
        self._occ_ctrl = config.occupancy_ctrl
        # per-requester snoop lists (everyone but the requester), so the
        # per-transaction loop needs no identity filtering
        self._peers: dict[int, list["CpuCacheSystem"]] = {}

    def attach(self, cache: "CpuCacheSystem") -> None:
        if cache.node_id >= self.n_nodes:
            raise ValueError(f"cpu {cache.cpu_id} on unknown node {cache.node_id}")
        self.caches.append(cache)
        self._peers = {
            c.cpu_id: [o for o in self.caches if o is not c] for c in self.caches
        }

    # -- node-bus arbitration ------------------------------------------------

    def _acquire(self, node: int, now: int, occupancy: int) -> int:
        busy = self._busy[node]
        start = busy if busy > now else now
        self._busy[node] = start + occupancy
        self.total_transactions += 1
        wait = start - now
        self.total_queue_cycles += wait
        return wait

    def _home(self, requester: "CpuCacheSystem", line: int) -> int:
        return self.memory.home_node(line << LINE_SHIFT, requester.node_id)

    # -- transactions ----------------------------------------------------------

    def read(self, now: int, requester: "CpuCacheSystem", line: int) -> tuple[int, int, int]:
        lat = self.latency
        ev = requester.events
        home = self._home(requester, line)
        wait = self._acquire(requester.node_id, now, self._occ_data)
        if home != requester.node_id:
            wait += self._acquire(home, now + wait, self._occ_data)
        ev.bus_memory += 1

        owner_node: int | None = None
        shared = False
        for cache in self._peers[requester.cpu_id]:
            resp = cache.snoop_read(line)
            if resp == MODIFIED:
                owner_node = cache.node_id
            elif resp:
                shared = True
        if owner_node is not None:
            ev.bus_rd_hitm += 1
            ev.coherent_misses += 1
            if owner_node == requester.node_id:
                return wait, lat.cache_to_cache, SHARED
            return wait, lat.remote_cache_to_cache, SHARED
        base = lat.memory if home == requester.node_id else lat.remote_memory
        if shared:
            ev.bus_rd_hit += 1
            return wait, base, SHARED
        return wait, base, EXCLUSIVE

    def read_excl(self, now: int, requester: "CpuCacheSystem", line: int) -> tuple[int, int, int]:
        lat = self.latency
        ev = requester.events
        home = self._home(requester, line)
        wait = self._acquire(requester.node_id, now, self._occ_data)
        if home != requester.node_id:
            wait += self._acquire(home, now + wait, self._occ_data)
        ev.bus_memory += 1

        owner_node: int | None = None
        remote_sharer = False
        local_sharer = False
        for cache in self._peers[requester.cpu_id]:
            resp = cache.snoop_invalidate(line)
            if resp == MODIFIED:
                owner_node = cache.node_id
            elif resp:
                if cache.node_id == requester.node_id:
                    local_sharer = True
                else:
                    remote_sharer = True
        if owner_node is not None:
            ev.bus_rd_inval += 1
            ev.bus_rd_inval_hitm += 1
            ev.coherent_misses += 1
            if owner_node == requester.node_id:
                return wait, lat.cache_to_cache, MODIFIED
            return wait, lat.remote_cache_to_cache, MODIFIED
        base = lat.memory if home == requester.node_id else lat.remote_memory
        if remote_sharer or local_sharer:
            ev.bus_rd_inval += 1
            ev.coherent_misses += 1
            if remote_sharer:
                base += lat.interconnect_hop  # invalidation acks cross the tree
        return wait, base, MODIFIED

    def upgrade(self, now: int, requester: "CpuCacheSystem", line: int) -> tuple[int, int]:
        lat = self.latency
        ev = requester.events
        home = self._home(requester, line)
        wait = self._acquire(requester.node_id, now, self._occ_ctrl)
        if home != requester.node_id:
            wait += self._acquire(home, now + wait, self._occ_ctrl)
        ev.bus_memory += 1
        ev.upgrades += 1
        remote = False
        invalidated = False
        for cache in self._peers[requester.cpu_id]:
            if cache.snoop_invalidate(line):
                invalidated = True
                if cache.node_id != requester.node_id:
                    remote = True
        if invalidated:
            ev.bus_rd_inval += 1
            ev.coherent_misses += 1
            cost = lat.upgrade + (lat.interconnect_hop if remote else 0)
        else:
            cost = lat.upgrade_quiet + (
                lat.interconnect_hop if home != requester.node_id else 0
            )
        return wait, cost

    def writeback(self, now: int, requester: "CpuCacheSystem", line: int) -> int:
        ev = requester.events
        home = self._home(requester, line)
        self._acquire(requester.node_id, now, self._occ_data)
        if home != requester.node_id:
            self._acquire(home, now, self._occ_data)
        ev.bus_memory += 1
        ev.writebacks += 1
        return self.latency.writeback
