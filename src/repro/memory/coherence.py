"""MESI (Illinois) coherence protocol states and invariants.

The 4-way Itanium 2 SMP server in the paper runs MESI over its
front-side bus; the SGI Altix runs an equivalent directory protocol.
States are small ints for speed; ``INVALID`` is represented by *absence*
from a cache's state map, so the constants start at 1.

Protocol invariants (property-tested in ``tests/memory``):

* at most one cache holds a line in M or E;
* if any cache holds M or E, no other cache holds the line at all;
* any number of caches may hold S simultaneously.

Transition summary (requester's view):

=============  =============  ==========================================
trigger        local result   remote effect
=============  =============  ==========================================
read miss      E (no sharer)  —
read miss      S (sharers)    remote E -> S; remote M -> S + writeback
store miss     M (RFO)        all remotes -> I; remote M flushes (HITM)
store on S     M (upgrade)    all remotes -> I
store on E     M (silent)     —
lfetch         as read miss   same as read miss
lfetch.excl    M              as store miss; the line is allocated
                              *dirty*, so its eventual eviction always
                              writes back (the paper's "increase the
                              number of writebacks" effect)
=============  =============  ==========================================
"""

from __future__ import annotations

__all__ = ["SHARED", "EXCLUSIVE", "MODIFIED", "state_name"]

SHARED = 1
EXCLUSIVE = 2
MODIFIED = 3

_NAMES = {None: "I", SHARED: "S", EXCLUSIVE: "E", MODIFIED: "M"}


def state_name(state: int | None) -> str:
    """Single-letter name of a MESI state (absence -> ``I``)."""
    return _NAMES[state]
