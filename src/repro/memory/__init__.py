"""Simulated memory system: caches, MESI coherence, buses, NUMA, DRAM.

The observable quantities the paper's profiler consumes — L2/L3 misses,
bus transactions, coherent snoop events, access latencies — are all
produced mechanistically by this package.
"""

from .address import LINE_SHIFT, PAGE_SHIFT, line_base, line_of, lines_spanned, page_of
from .bus import SnoopBus
from .cache import CacheArray
from .coherence import EXCLUSIVE, MODIFIED, SHARED, state_name
from .directory import DirectoryFabric
from .dram import DATA_BASE, Allocation, MemorySystem
from .events import MemEvents
from .hierarchy import ATOMIC, LOAD, LOAD_BIAS, PREFETCH, PREFETCH_EXCL, STORE, CpuCacheSystem

__all__ = [
    "LINE_SHIFT",
    "PAGE_SHIFT",
    "line_of",
    "page_of",
    "line_base",
    "lines_spanned",
    "SnoopBus",
    "CacheArray",
    "SHARED",
    "EXCLUSIVE",
    "MODIFIED",
    "state_name",
    "DirectoryFabric",
    "MemorySystem",
    "Allocation",
    "DATA_BASE",
    "MemEvents",
    "CpuCacheSystem",
    "LOAD",
    "ATOMIC",
    "STORE",
    "PREFETCH",
    "PREFETCH_EXCL",
    "LOAD_BIAS",
]
