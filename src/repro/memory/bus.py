"""Snooping front-side bus with MESI coherence (the SMP fabric).

All CPUs of the 4-way Itanium 2 server share one bus.  Every miss,
read-for-ownership, upgrade, and writeback is a bus transaction that

* occupies the bus for ``occupancy_data`` or ``occupancy_ctrl`` cycles
  (queueing delay emerges from the ``busy_until`` bookkeeping — this is
  how aggressive prefetching by one CPU slows the others down), and
* snoops every other CPU's cache, producing the coherent bus events the
  paper's profiler watches (``BUS_RD_HIT``, ``BUS_RD_HITM``,
  ``BUS_RD_INVAL``).

The bus returns ``(stall_latency, install_state)`` to the requesting
cache hierarchy.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..config import BusConfig, LatencyConfig
from .coherence import EXCLUSIVE, MODIFIED, SHARED

if TYPE_CHECKING:  # pragma: no cover
    from .hierarchy import CpuCacheSystem

__all__ = ["SnoopBus"]


class SnoopBus:
    """One shared bus; also usable as the intra-node bus of a NUMA node."""

    def __init__(self, config: BusConfig, latency: LatencyConfig) -> None:
        self.config = config
        self.latency = latency
        self.caches: list["CpuCacheSystem"] = []
        self.busy_until = 0
        self.total_transactions = 0
        self.total_queue_cycles = 0
        self._occ_data = config.occupancy_data
        self._occ_ctrl = config.occupancy_ctrl
        # per-requester snoop lists (everyone but the requester), so the
        # per-transaction loop needs no identity filtering
        self._peers: dict[int, list["CpuCacheSystem"]] = {}

    def attach(self, cache: "CpuCacheSystem") -> None:
        self.caches.append(cache)
        self._peers = {
            c.cpu_id: [o for o in self.caches if o is not c] for c in self.caches
        }

    # -- arbitration ---------------------------------------------------

    def _acquire(self, now: int, occupancy: int) -> int:
        """Reserve the bus at ``now``; return the queueing delay."""
        start = self.busy_until if self.busy_until > now else now
        self.busy_until = start + occupancy
        self.total_transactions += 1
        wait = start - now
        self.total_queue_cycles += wait
        return wait

    # -- transactions ----------------------------------------------------

    def read(self, now: int, requester: "CpuCacheSystem", line: int) -> tuple[int, int, int]:
        """Shared read (load or plain lfetch miss).

        Returns ``(queue_wait, latency, state)`` where ``state`` is the
        MESI state the requester installs: E if no other cache held the
        line, else S.  The wait and latency are split so the hierarchy
        can charge prefetches their bus-bandwidth cost without the data
        latency (prefetches are non-blocking).
        """
        lat = self.latency
        ev = requester.events
        busy = self.busy_until
        start = busy if busy > now else now
        self.busy_until = start + self._occ_data
        self.total_transactions += 1
        wait = start - now
        self.total_queue_cycles += wait
        ev.bus_memory += 1
        hitm = False
        shared = False
        for cache in self._peers[requester.cpu_id]:
            resp = cache.snoop_read(line)
            if resp == MODIFIED:
                hitm = True
            elif resp:
                shared = True
        if hitm:
            ev.bus_rd_hitm += 1
            ev.coherent_misses += 1
            return wait, lat.cache_to_cache, SHARED
        if shared:
            ev.bus_rd_hit += 1
            return wait, lat.memory, SHARED
        return wait, lat.memory, EXCLUSIVE

    def read_excl(self, now: int, requester: "CpuCacheSystem", line: int) -> tuple[int, int, int]:
        """Read-for-ownership (store miss, or lfetch.excl miss).

        Returns ``(queue_wait, latency, state)``.  All other copies are
        invalidated; the requester installs M.
        """
        lat = self.latency
        ev = requester.events
        busy = self.busy_until
        start = busy if busy > now else now
        self.busy_until = start + self._occ_data
        self.total_transactions += 1
        wait = start - now
        self.total_queue_cycles += wait
        ev.bus_memory += 1
        hitm = False
        invalidated = False
        for cache in self._peers[requester.cpu_id]:
            resp = cache.snoop_invalidate(line)
            if resp == MODIFIED:
                hitm = True
            elif resp:
                invalidated = True
        if hitm:
            ev.bus_rd_inval_hitm += 1
            ev.bus_rd_inval += 1
            ev.coherent_misses += 1
            return wait, lat.cache_to_cache, MODIFIED
        if invalidated:
            ev.bus_rd_inval += 1
            ev.coherent_misses += 1
        return wait, lat.memory, MODIFIED

    def upgrade(self, now: int, requester: "CpuCacheSystem", line: int) -> tuple[int, int]:
        """Ownership upgrade for a store hitting a SHARED line.

        Returns ``(queue_wait, latency)``.
        """
        ev = requester.events
        busy = self.busy_until
        start = busy if busy > now else now
        self.busy_until = start + self._occ_ctrl
        self.total_transactions += 1
        wait = start - now
        self.total_queue_cycles += wait
        ev.bus_memory += 1
        ev.upgrades += 1
        invalidated = False
        for cache in self._peers[requester.cpu_id]:
            if cache.snoop_invalidate(line):
                invalidated = True
        if invalidated:
            ev.bus_rd_inval += 1
            ev.coherent_misses += 1
            return wait, self.latency.upgrade
        return wait, self.latency.upgrade_quiet

    def writeback(self, now: int, requester: "CpuCacheSystem", line: int) -> int:
        """Dirty L3 eviction to memory (posted; small drain cost)."""
        ev = requester.events
        self._acquire(now, self._occ_data)
        ev.bus_memory += 1
        ev.writebacks += 1
        return self.latency.writeback
