"""Overload harness: pressure schedules must never change outputs.

Mirrors :class:`repro.faults.chaos.ChaosHarness`, but sweeps *overload
schedules* (seeded budget shrinks, sample floods, slow-disk latency,
daemon ingest storms) against the ungoverned clean run.  The contract
it enforces is the graceful-degradation invariant:

* under any overload schedule, committed outputs are bit-identical to
  the clean run — degradation may only forgo optimization, never change
  semantics;
* every shed, evicted, refused, or compacted item is accounted in the
  fault ledger (no silent loss);
* ladder transitions are well-formed: one rung at a time, escalations
  only at or above the escalation threshold, recoveries only after a
  full calm streak;
* the ladder returns to ``full`` once pressure has been clear for the
  guaranteed recovery horizon (``(len(RUNGS)-1) * recovery_windows``
  calm wakes).

Each cell of the (machine × schedule × seed) matrix runs on a fresh
machine with a fresh program build, so schedules cannot contaminate
each other and every failure replays from its seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Mapping

from ..config import GovernorConfig, OverloadConfig
from ..cpu.machine import Machine
from ..faults.injector import FaultLedger
from ..validate.differential import (
    WorkloadSpec,
    _digest,
    _snapshot_arrays,
    default_machines,
)
from .core import max_recovery_wakes
from .ladder import RUNGS

__all__ = [
    "OverloadHarness",
    "OverloadRecord",
    "OverloadReport",
    "OVERLOAD_SCHEDULES",
]

#: Named rate presets swept by default.  Every schedule is capped
#: (``max_events``) so it quiesces and the recovery contract is
#: checkable within the run.
OVERLOAD_SCHEDULES: dict[str, dict] = {
    "shrink": dict(shrink_rate=0.30, max_events=4),
    "flood": dict(flood_rate=0.25, flood_factor=4, flood_windows=2, max_events=4),
    "storm": dict(storm_rate=0.30, disk_rate=0.20, max_events=6),
    "everything": dict(
        shrink_rate=0.15, flood_rate=0.15, disk_rate=0.15, storm_rate=0.15,
        max_events=8,
    ),
}


@dataclass(frozen=True)
class OverloadRecord:
    """One governed (machine, schedule, seed) cell."""

    machine: str
    schedule: str
    seed: int
    cycles: int
    digest: str
    governor: dict
    ledger: FaultLedger | None

    @property
    def label(self) -> str:
        return f"{self.machine}/{self.schedule}/seed={self.seed}"


@dataclass
class OverloadReport:
    """Outcome of one overload sweep."""

    workload: str
    baseline_digests: dict[str, str] = field(default_factory=dict)
    records: list[OverloadRecord] = field(default_factory=list)
    failures: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def total_injected(self) -> int:
        return sum(r.governor.get("injected", 0) for r in self.records)

    def summary(self) -> str:
        lines = [
            f"overload[{self.workload}]: {len(self.records)} governed run(s), "
            f"{self.total_injected()} overload event(s) injected, "
            f"{'OK' if self.ok else 'FAIL'}"
        ]
        for rec in self.records:
            gov = rec.governor
            lines.append(
                f"  {rec.label:34s} cycles={rec.cycles:<10d} "
                f"digest={rec.digest[:12]} rung={gov['rung']} "
                f"injected={gov['injected']} evicted={gov['evictions']} "
                f"shed={gov['shed_samples']} refused={gov['deploys_refused']} "
                f"transitions={len(gov['transitions'])}"
            )
        for failure in self.failures:
            lines.append(f"  FAIL: {failure}")
        return "\n".join(lines)


class OverloadHarness:
    """Runs one workload across the machine × schedule × seed matrix."""

    def __init__(
        self,
        workload: WorkloadSpec,
        machines: Mapping[str, Callable[[], Machine]] | None = None,
        schedules: Mapping[str, dict] | None = None,
        seeds: tuple[int, ...] = (0,),
        governor: GovernorConfig | None = None,
        max_bundles: int | None = None,
    ) -> None:
        self.workload = workload
        self.machines = dict(machines) if machines is not None else default_machines()
        self.schedules = (
            dict(schedules) if schedules is not None else dict(OVERLOAD_SCHEDULES)
        )
        self.seeds = tuple(seeds)
        #: per-cell configs are this template with the cell's overload
        #: plan attached; the small sample queue makes floods actually
        #: shed on short runs
        self.governor = (
            governor
            if governor is not None
            else GovernorConfig(sample_queue_depth=16, budget_floor=48)
        )
        self.max_bundles = max_bundles

    def _baseline(self, mname: str, factory: Callable[[], Machine]) -> str:
        """Clean reference digest (plain run, no COBRA, no governor)."""
        machine = factory()
        prog = self.workload.build(machine)
        prog.run(max_bundles=self.max_bundles)
        return _digest(_snapshot_arrays(prog))

    def _governed(
        self, mname: str, factory: Callable[[], Machine], schedule: str, seed: int
    ) -> tuple[OverloadRecord | None, str | None]:
        # deferred: repro.core imports repro.validate at module scope
        from ..core.framework import run_with_cobra

        machine = factory()
        prog = self.workload.build(machine)
        overload = OverloadConfig(seed=seed, **self.schedules[schedule])
        config = replace(
            machine.config.cobra,
            governor=replace(self.governor, overload=overload),
            # frequent wakes: overload draws happen per optimizer wake,
            # and the ladder needs enough observations within one run to
            # escalate under pressure *and* walk back to full
            optimize_interval=5_000,
        )
        label = f"{mname}/{schedule}/seed={seed}"
        try:
            result, report = run_with_cobra(
                prog, "adaptive", config=config, max_bundles=self.max_bundles
            )
        except Exception as exc:  # the invariant is *zero* escapes
            return None, f"{label}: unhandled {type(exc).__name__}: {exc}"
        record = OverloadRecord(
            machine=mname,
            schedule=schedule,
            seed=seed,
            cycles=result.cycles,
            digest=_digest(_snapshot_arrays(prog)),
            governor=report.governor or {},
            ledger=report.faults,
        )
        return record, None

    def _check(self, record: OverloadRecord, report: OverloadReport) -> None:
        base = report.baseline_digests[record.machine]
        gov = record.governor
        if record.digest != base:
            report.failures.append(
                f"{record.label}: output digest {record.digest[:12]} differs "
                f"from clean {base[:12]} — overload reached program correctness"
            )
        if record.ledger is not None and not record.ledger.accounted:
            report.failures.append(
                f"{record.label}: {record.ledger.outstanding} event(s) "
                "unaccounted (neither detected nor tolerated)"
            )
        if gov.get("injected", 0) and record.ledger is None:
            report.failures.append(
                f"{record.label}: overload injected but no ledger attached"
            )
        rung = "full"
        for t in gov.get("transitions", ()):
            frm, to = t["from"], t["to"]
            if frm != rung or abs(RUNGS.index(to) - RUNGS.index(frm)) != 1:
                report.failures.append(
                    f"{record.label}: malformed transition {frm} -> {to} "
                    f"(ladder was at {rung})"
                )
            elif RUNGS.index(to) > RUNGS.index(frm):
                if t["pressure"] < self.governor.escalate_pressure:
                    report.failures.append(
                        f"{record.label}: escalation {frm} -> {to} at pressure "
                        f"{t['pressure']:.3f} below the escalation threshold"
                    )
            else:
                if t["streak"] < self.governor.recovery_windows:
                    report.failures.append(
                        f"{record.label}: recovery {frm} -> {to} after only "
                        f"{t['streak']} calm window(s)"
                    )
            rung = to
        if rung != gov.get("rung"):
            report.failures.append(
                f"{record.label}: transition log ends at {rung} but the "
                f"governor reports rung {gov.get('rung')}"
            )
        calm = gov.get("wakes", 0) - gov.get("last_pressure_wake", 0)
        if gov.get("rung") != "full" and calm >= max_recovery_wakes(self.governor):
            report.failures.append(
                f"{record.label}: still at rung {gov.get('rung')} after "
                f"{calm} calm wake(s) — recovery never converged"
            )

    def run(self, jobs: int = 1) -> OverloadReport:
        from ..parallel import run_tasks

        machines = sorted(self.machines.items())
        # clean references and governed cells are all independent
        # (fresh machine, fresh build, per-cell seed), so they fan out
        # together; the merge below walks the same ordered matrix the
        # sequential sweep would, keeping the report byte-identical at
        # any job count
        baseline_tasks = [
            (self._baseline, (mname, factory)) for mname, factory in machines
        ]
        cells = [
            (mname, factory, schedule, seed)
            for mname, factory in machines
            for schedule in sorted(self.schedules)
            for seed in self.seeds
        ]
        outcomes = run_tasks(
            baseline_tasks + [(self._governed, cell) for cell in cells],
            jobs=jobs,
        )
        report = OverloadReport(self.workload.name)
        for (mname, _factory), digest in zip(machines, outcomes):
            report.baseline_digests[mname] = digest
        for (_mname, _factory, _schedule, _seed), (record, error) in zip(
            cells, outcomes[len(machines):]
        ):
            if error is not None:
                report.failures.append(error)
                continue
            report.records.append(record)
            self._check(record, report)
        if report.records and report.total_injected() == 0:
            report.failures.append(
                "overload schedule injected nothing across the whole matrix — "
                "raise the rates or the run length; this sweep proved nothing"
            )
        return report
