"""The five-rung graceful-degradation ladder.

Kept free of runtime dependencies so the hysteresis contract is
directly property-testable: the ladder is a pure function of the
pressure observations fed to it.

Rungs, in escalation order:

``full``
    Everything on: profile, compile, deploy.
``no-new-compiles``
    Live traces stay live, but no new deployment is attempted.
``monitor-only``
    Every deployment is rolled back (the unmodified original is always
    correct); profiling and reporting continue.
``frozen``
    Monitors stop too — no samples, no patches, pure pass-through.
``off``
    The optimizer wake itself becomes a no-op beyond the governor.

Transitions are one rung per observation, with hysteresis: escalate
while pressure is at or above ``escalate``; recover one rung only after
``recovery_windows`` *consecutive* observations at or below
``recover``; anything in the band between the two thresholds holds the
current rung and resets the recovery streak.  Because the band is
non-empty (enforced at construction), a pressure level held at either
boundary can never oscillate — at ``escalate`` it descends monotonically
to ``off`` and stays, at ``recover`` it climbs cleanly back to ``full``.
"""

from __future__ import annotations

__all__ = ["RUNGS", "DegradationLadder"]

#: Service rungs in escalation order (index 0 = fully operational).
RUNGS = ("full", "no-new-compiles", "monitor-only", "frozen", "off")


class DegradationLadder:
    """Hysteresis state machine over the five service rungs."""

    def __init__(
        self,
        escalate: float = 0.85,
        recover: float = 0.60,
        recovery_windows: int = 3,
    ) -> None:
        if not 0.0 < recover < escalate <= 1.0:
            raise ValueError(
                f"need 0 < recover ({recover}) < escalate ({escalate}) <= 1"
            )
        if recovery_windows < 1:
            raise ValueError(f"recovery_windows must be >= 1, got {recovery_windows}")
        self.escalate = escalate
        self.recover = recover
        self.recovery_windows = recovery_windows
        self.rung_index = 0
        #: consecutive calm observations toward the next recovery
        self.clear_streak = 0

    @property
    def rung(self) -> str:
        return RUNGS[self.rung_index]

    def observe(self, pressure: float) -> tuple[str, str, int] | None:
        """Feed one pressure observation; returns ``(from, to, streak)``
        on a transition (``streak`` is the calm-window count that earned
        a recovery, 0 for an escalation), else ``None``."""
        if pressure >= self.escalate:
            self.clear_streak = 0
            if self.rung_index < len(RUNGS) - 1:
                self.rung_index += 1
                return (RUNGS[self.rung_index - 1], RUNGS[self.rung_index], 0)
            return None
        if pressure <= self.recover:
            self.clear_streak += 1
            if self.clear_streak >= self.recovery_windows and self.rung_index > 0:
                streak = self.clear_streak
                self.clear_streak = 0
                self.rung_index -= 1
                return (RUNGS[self.rung_index + 1], RUNGS[self.rung_index], streak)
            return None
        # hysteresis band: hold the rung, restart the recovery clock
        self.clear_streak = 0
        return None
