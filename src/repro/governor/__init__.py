"""Resource governor: budgets, overload injection, graceful degradation.

See :class:`~repro.governor.core.ResourceGovernor` for the budgets and
pressure model, :class:`~repro.governor.ladder.DegradationLadder` for
the five-rung hysteresis ladder, and
:class:`~repro.governor.harness.OverloadHarness` for the sweep proving
that no overload schedule can change program outputs.
"""

from .core import OverloadInjector, ResourceGovernor, max_recovery_wakes
from .harness import (
    OVERLOAD_SCHEDULES,
    OverloadHarness,
    OverloadRecord,
    OverloadReport,
)
from .ladder import RUNGS, DegradationLadder

__all__ = [
    "RUNGS",
    "DegradationLadder",
    "ResourceGovernor",
    "OverloadInjector",
    "max_recovery_wakes",
    "OverloadHarness",
    "OverloadRecord",
    "OverloadReport",
    "OVERLOAD_SCHEDULES",
]
