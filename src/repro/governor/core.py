"""Runtime resource governor and seeded overload injector.

The governor puts an explicit budget on every structure that would
otherwise grow without bound and converts exhaustion from a hard edge
(permanent deploy refusal, silent queue growth) into governed
degradation: cold resident trace copies are evicted deterministically,
sample queues shed their oldest entries with ledger accounting, the
fleet outbox is bounded, and sustained pressure walks the
:class:`~repro.governor.ladder.DegradationLadder` one rung at a time.
Degradation only ever *forgoes optimization* — running the unmodified
original is always correct — so program outputs stay bit-identical to
an ungoverned run under any overload schedule.

Pressure is measured over the *irreducible* trace footprint (bundles of
the live versions only): rolled-back resident copies are reclaimable at
any time by eviction and must not hold the ladder down, or recovery to
``full`` could never converge.  The overload injector draws from its
**own** PRNG (:class:`~repro.config.OverloadConfig.seed`), never the
fault injector's, so arming overload cannot perturb an armed fault
schedule; its events enter the shared fault ledger via
:meth:`~repro.faults.injector.FaultInjector.inject` (no draw) and every
governor response — eviction, shed, refusal, compaction — is recorded
as a detected event, keeping the standing full-accounting contract.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING

from ..config import FaultConfig, GovernorConfig, OverloadConfig
from .ladder import RUNGS, DegradationLadder

if TYPE_CHECKING:  # pragma: no cover
    from ..faults.injector import FaultInjector

__all__ = ["ResourceGovernor", "OverloadInjector"]


class OverloadInjector:
    """Draws the seeded overload schedule (one draw per category per wake)."""

    #: (fault kind, rate attribute) per category, in draw order
    CATEGORIES = (
        ("budget_shrink", "shrink_rate"),
        ("sample_flood", "flood_rate"),
        ("slow_disk", "disk_rate"),
        ("ingest_storm", "storm_rate"),
    )

    def __init__(self, config: OverloadConfig) -> None:
        self.config = config
        self.rng = random.Random(config.seed)
        self.injected = 0

    def draw(self) -> list[str]:
        """Overload events for this wake (empty once ``max_events`` hit)."""
        kinds: list[str] = []
        for kind, attr in self.CATEGORIES:
            rate = getattr(self.config, attr)
            if rate <= 0.0 or self.rng.random() >= rate:
                continue
            if self.config.max_events and self.injected >= self.config.max_events:
                continue
            self.injected += 1
            kinds.append(kind)
        return kinds


class ResourceGovernor:
    """Budgets, pressure accounting, and the degradation ladder.

    Wired post-construction like the persistence manager: the trace
    cache, every monitoring thread, and the optimizer hold a reference;
    ``None`` anywhere means ungoverned behaviour, bit-identical to
    before the governor existed.
    """

    def __init__(
        self,
        config: GovernorConfig,
        capacity: int,
        faults: "FaultInjector | None" = None,
    ) -> None:
        self.config = config
        budget = capacity
        if config.trace_cache_budget is not None:
            budget = min(budget, config.trace_cache_budget)
        #: current trace-cache bundle budget (shrinks under overload,
        #: never below ``config.budget_floor``)
        self.trace_budget = budget
        #: per-monitor sample-queue depth (drop-oldest past this)
        self.sample_budget = config.sample_queue_depth
        self.ladder = DegradationLadder(
            config.escalate_pressure,
            config.recover_pressure,
            config.recovery_windows,
        )
        self.overload = (
            OverloadInjector(config.overload) if config.overload is not None else None
        )
        if faults is None:
            # private ledger: the run has no chaos injector, but shed/
            # evicted/refused items still need accounting.  Zero rates —
            # this injector never draws, it only records.
            from ..faults.injector import FaultInjector

            seed = config.overload.seed if config.overload is not None else 0
            faults = FaultInjector(
                FaultConfig(seed=seed, sample_rate=0.0, patch_rate=0.0, loop_rate=0.0)
            )
            self.private_ledger = True
        else:
            self.private_ledger = False
        self.faults = faults

        self.wakes = 0
        self.last_pressure = 0.0
        #: wake index of the last observation above ``recover_pressure``
        #: (the harness bounds recovery time from this)
        self.last_pressure_wake = 0
        self.deploys_refused = 0
        self.evictions = 0
        self.evicted_bundles = 0
        self.jit_evictions = 0
        self.jit_evicted_bundles = 0
        self.shed_samples = 0
        self.shed_batches = 0
        self.db_compacted = 0
        #: ladder transitions, in order: dicts with retired/from/to/
        #: pressure/streak
        self.transitions: list[dict] = []
        self._shed_since_wake = 0
        self._flood_left = 0
        self._disk_backlog = 0.0
        self._ingest_backlog = 0.0
        # one ledger event per refused (loop, budget) pair — a loop
        # refused at the same budget every wake is one finding, not many
        self._refused_logged: set[tuple[int, int]] = set()

    @property
    def rung(self) -> str:
        return self.ladder.rung

    # -- budget accounting (called by the governed structures) -------------

    def admit_deploy(self, active_bundles: int, n_bundles: int) -> bool:
        """May a deployment grow the live footprint by ``n_bundles``?

        Admission keeps the irreducible footprint at or below the
        recovery threshold's share of the budget, so a run that has
        recovered to ``full`` can never immediately push itself back
        over the escalation edge by deploying.
        """
        headroom = self.config.recover_pressure * self.trace_budget
        return active_bundles + n_bundles <= headroom

    def note_evicted(self, victims: list[tuple[int, str, int]]) -> None:
        """Cold resident copies were freed; account each in the ledger."""
        for head, opt, n_bundles in victims:
            self.evictions += 1
            self.evicted_bundles += n_bundles
            self.faults.observe(
                "trace_evicted",
                "governor",
                f"cold {opt} trace for loop {head:#x} evicted "
                f"({n_bundles} bundle(s))",
            )

    def note_jit_evicted(
        self, cpu_id: int, victims: list[tuple[int, str, int]]
    ) -> None:
        """A core's trace JIT freed cold tree nodes; ledger each one."""
        for head, kind, n_bundles in victims:
            self.jit_evictions += 1
            self.jit_evicted_bundles += n_bundles
            self.faults.observe(
                "jit_traces_evicted",
                "governor",
                f"cpu {cpu_id}: cold {kind} trace node {head:#x} evicted "
                f"({n_bundles} bundle(s))",
            )

    def note_refused(self, head: int, n_bundles: int) -> None:
        """A deployment could not be admitted even after eviction."""
        self.deploys_refused += 1
        key = (head, self.trace_budget)
        if key not in self._refused_logged:
            self._refused_logged.add(key)
            self.faults.observe(
                "deploy_refused",
                "governor",
                f"deploy of loop {head:#x} ({n_bundles} bundle(s)) refused "
                f"at budget {self.trace_budget}",
            )

    def note_shed_samples(self, count: int, cpu_id: int) -> None:
        """A monitor dropped its oldest ``count`` samples at the cap."""
        self.shed_samples += count
        self._shed_since_wake += count
        self.faults.observe(
            "samples_shed",
            "governor",
            f"monitor {cpu_id} shed {count} oldest sample(s) at depth "
            f"{self.sample_budget}",
        )

    def note_compacted(self, count: int) -> None:
        """Profile-DB compaction dropped ``count`` coldest entries."""
        if count:
            self.db_compacted += count
            self.faults.observe(
                "db_compacted",
                "governor",
                f"profile-db compaction dropped {count} coldest entr(y/ies) "
                f"at budget {self.config.profile_db_entries}",
            )

    def flood_extra(self) -> int:
        """Extra copies each delivered sample fans into during a flood."""
        if self._flood_left > 0 and self.config.overload is not None:
            return self.config.overload.flood_factor - 1
        return 0

    # -- one governed wake -------------------------------------------------

    def on_wake(self, retired: int, trace_cache, outbox=None, cores=None) -> str:
        """Inject, enforce budgets, measure pressure, move the ladder."""
        self.wakes += 1
        if self._flood_left > 0:
            self._flood_left -= 1
        if self.overload is not None:
            for kind in self.overload.draw():
                self._apply_overload(kind, trace_cache)
        # room maintenance: total residency (live + cold copies) above
        # the budget — only possible after a shrink — evicts coldest
        # copies down to the budget; this is reclamation, not pressure
        if trace_cache.used_bundles > self.trace_budget:
            self.note_evicted(trace_cache.evict_cold(self.trace_budget))
        # the trace JIT's tree nodes are a second compiled footprint:
        # bound each core's resident bundles the same cold-first way
        jit_budget = self.config.jit_node_budget
        if cores is not None and jit_budget is not None:
            for core in cores:
                tjit = core.trace_jit
                if tjit.compiled_footprint() > jit_budget:
                    self.note_jit_evicted(
                        core.cpu_id, tjit.evict_cold(jit_budget)
                    )
        if outbox is not None and len(outbox.windows) > self.config.outbox_batches:
            shed = len(outbox.windows) - self.config.outbox_batches
            del outbox.windows[:shed]
            self.shed_batches += shed
            self.faults.observe(
                "batches_shed",
                "governor",
                f"outbox shed {shed} oldest batch(es) at budget "
                f"{self.config.outbox_batches}",
            )
        pressure = self._pressure(trace_cache, outbox)
        self.last_pressure = pressure
        if pressure > self.config.recover_pressure:
            self.last_pressure_wake = self.wakes
        transition = self.ladder.observe(pressure)
        if transition is not None:
            frm, to, streak = transition
            self.transitions.append(
                {
                    "retired": retired,
                    "from": frm,
                    "to": to,
                    "pressure": pressure,
                    "streak": streak,
                }
            )
        # gauges decay after the observation (a spike is pressure for
        # the wake it lands on, then drains)
        self._disk_backlog *= 0.5
        self._ingest_backlog *= 0.5
        self._shed_since_wake = 0
        return self.rung

    def _apply_overload(self, kind: str, trace_cache) -> None:
        overload = self.config.overload
        if kind == "budget_shrink":
            old = self.trace_budget
            new = max(
                self.config.budget_floor, int(old * overload.shrink_factor)
            )
            self.trace_budget = new
            event = self.faults.inject(
                "budget_shrink", "governor", f"trace budget {old} -> {new}"
            )
            victims = trace_cache.evict_cold(self.trace_budget)
            if victims:
                self.note_evicted(victims)
            note = (
                f"budget clamped {old} -> {new}; "
                f"{len(victims)} cold version(s) evicted"
                if new < old
                else f"budget already at floor {self.config.budget_floor}"
            )
            self.faults.detected(event, note)
        elif kind == "sample_flood":
            self._flood_left = overload.flood_windows
            event = self.faults.inject(
                "sample_flood", "governor",
                f"x{overload.flood_factor} for {overload.flood_windows} window(s)",
            )
            self.faults.detected(
                event,
                f"sample cap {self.sample_budget} armed; flood sheds accounted",
            )
        elif kind == "slow_disk":
            # latency only: persistence content is never mutated, so the
            # fault is harmless by construction — it just charges the
            # disk gauge and may degrade service
            self._disk_backlog += 1.0
            self.faults.inject(
                "slow_disk", "governor",
                "synthetic disk latency charged to the pressure gauge",
                tolerated=True,
            )
        elif kind == "ingest_storm":
            self._ingest_backlog += 1.0
            event = self.faults.inject(
                "ingest_storm", "governor", "synthetic daemon ingest backlog"
            )
            self.faults.detected(
                event, "backlog charged to the pressure gauge and drained"
            )

    def _pressure(self, trace_cache, outbox) -> float:
        """Overall pressure in [0, 1]: the worst of all gauges."""
        components = [
            min(1.0, trace_cache.active_bundles / self.trace_budget),
            min(1.0, self._shed_since_wake / self.sample_budget),
            1.0 if self._flood_left > 0 else 0.0,
            min(1.0, self._disk_backlog),
            min(1.0, self._ingest_backlog),
        ]
        if outbox is not None:
            components.append(
                min(1.0, len(outbox.windows) / self.config.outbox_batches)
            )
        return max(components)

    # -- reporting ---------------------------------------------------------

    def report(self) -> dict:
        """The ``CobraReport.governor`` payload."""
        return {
            "rung": self.rung,
            "trace_budget": self.trace_budget,
            "deploys_refused": self.deploys_refused,
            "evictions": self.evictions,
            "evicted_bundles": self.evicted_bundles,
            "jit_evictions": self.jit_evictions,
            "jit_evicted_bundles": self.jit_evicted_bundles,
            "shed_samples": self.shed_samples,
            "shed_batches": self.shed_batches,
            "db_compacted": self.db_compacted,
            "wakes": self.wakes,
            "last_pressure_wake": self.last_pressure_wake,
            "injected": self.overload.injected if self.overload is not None else 0,
            "transitions": list(self.transitions),
        }


def max_recovery_wakes(config: GovernorConfig) -> int:
    """Calm wakes that guarantee return to ``full`` from any rung."""
    return (len(RUNGS) - 1) * config.recovery_windows
