"""Fault-injectable in-process transport between agents and the daemon.

The fleet runs offline-deterministic: each agent produces its wire
frames during its (possibly process-parallel) run, and the harness
replays every channel through the daemon afterwards in one global,
virtual-clock order.  :func:`simulate_channel` is the per-channel half:
it takes an agent's frames and send times, applies that channel's
seeded fault schedule (drop / duplicate / reorder / delay / corrupt /
poison), and returns the byte stream the daemon will actually see plus
the fault events to account.

Faulted sends retry with capped exponential backoff and seeded jitter
(:func:`repro.fleet.faults.backoff_delays`); retransmits of a faulted
frame always succeed, so every schedule terminates and a dropped frame
is tolerated by construction.  All timing is virtual (ticks are retired
instructions on the agent's clock), so worker count and wall-clock
never influence delivery order.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field

from ..config import FleetFaultConfig
from ..faults.injector import FaultEvent
from .faults import TransportFaults, backoff_delays
from .wire import encode_frame

__all__ = ["Delivery", "ChannelResult", "simulate_channel"]


@dataclass(frozen=True)
class Delivery:
    """One frame arriving at the daemon."""

    tick: int        # virtual arrival time (agent retired-instruction clock)
    ordinal: int     # tie-break within (tick, instance): channel send order
    data: bytes


@dataclass
class ChannelResult:
    """Everything one agent's channel produced."""

    delivered: list[Delivery] = field(default_factory=list)
    events: list[FaultEvent] = field(default_factory=list)
    #: total send attempts, retransmits included
    attempts: int = 0
    #: clean frame encodings, for the rejoin/reconcile replay
    clean: list[bytes] = field(default_factory=list)


def _poison_payload(payload: dict) -> dict:
    """A CRC-valid frame whose payload lies (the compromised stream).

    The damage is always *sanitizer-visible*: a negative count the
    daemon's range checks must catch.  In-range lies are measurement
    noise by the output-invariance argument — they can cost performance,
    never correctness — so the injector only produces violations the
    daemon is required to quarantine.
    """
    poisoned = copy.deepcopy(payload)
    if poisoned["k"] == "batch":
        poisoned["window"]["samples"] = -1
    else:  # profile
        poisoned["entry"]["cpi_count"] = -1
    return poisoned


def simulate_channel(
    frames: list[dict],
    times: list[int],
    config: FleetFaultConfig | None,
    instance: str,
) -> ChannelResult:
    """Push ``frames`` through one agent's faulted channel."""
    result = ChannelResult()
    faults = TransportFaults(config, instance) if config is not None else None
    ordinal = 0

    def deliver(tick: int, data: bytes) -> None:
        nonlocal ordinal
        result.delivered.append(Delivery(tick, ordinal, data))
        ordinal += 1
        result.attempts += 1

    for idx, payload in enumerate(frames):
        data = encode_frame(payload)
        result.clean.append(data)
        tick = times[idx]
        if faults is None:
            deliver(tick, data)
            continue
        # poison needs a payload with counts to lie about; hello frames
        # only carry identity, so the draw falls back to the other kinds
        exclude = ("poison_batch",) if payload["k"] == "hello" else ()
        event = _draw(faults, exclude)
        if event is None:
            deliver(tick, data)
            continue
        delays = backoff_delays(
            f"{config.seed}:{instance}:{idx}",
            config.max_attempts,
            config.backoff_base,
            config.backoff_cap,
        )
        if event.kind == "drop_frame":
            result.attempts += 1  # the send that vanished
            if config.max_attempts > 1:
                event.note = f"retransmitted after backoff ({delays[0]} tick(s))"
                deliver(tick + delays[0], data)
            else:
                event.note = "gave up after 1 attempt(s); reconciled at rejoin"
        elif event.kind == "dup_frame":
            event.note = "receiver sequence-number dedup"
            deliver(tick, data)
            deliver(tick, data)
        elif event.kind == "reorder_frame":
            event.note = "sequence numbers make reordered batches no-ops"
            skew = (times[idx + 1] - tick + 1) if idx + 1 < len(times) else 2
            deliver(tick + max(skew, 1), data)
        elif event.kind == "delay_frame":
            held = faults.delay_ticks()
            event.note = f"held {held} tick(s); ingestion order is seq-safe"
            deliver(tick + held, data)
        elif event.kind == "corrupt_frame":
            # one flipped byte breaks the CRC; the daemon must reject it
            # (claimed by the harness against the daemon's reject count)
            flip = faults.corrupt_position(len(data))
            damaged = bytearray(data)
            damaged[flip] ^= 0xFF
            deliver(tick, bytes(damaged))
            deliver(tick + delays[0], data)  # clean retransmit
        else:  # poison_batch: CRC-valid, payload lies
            deliver(tick, encode_frame(_poison_payload(payload)))
    if faults is not None:
        result.events = faults.events
    return result


def _draw(faults: TransportFaults, exclude: tuple[str, ...]) -> FaultEvent | None:
    """One schedule draw, optionally excluding inapplicable kinds.

    The rate draw always consumes the same PRNG stream position, so
    excluding a kind for one frame never shifts the rest of the
    schedule's rate decisions.
    """
    if not exclude:
        return faults.frame_fault()
    saved = faults.kinds
    faults.kinds = tuple(k for k in saved if k not in exclude) or saved
    try:
        return faults.frame_fault()
    finally:
        faults.kinds = saved
