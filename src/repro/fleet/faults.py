"""Seeded transport fault schedule and retry backoff for fleet mode.

The fleet transport is attacked the same way the runtime is
(:mod:`repro.faults`): a seeded PRNG draws one optional fault per frame
send, every injected fault becomes a :class:`~repro.faults.injector.FaultEvent`,
and the harness fails unless each one ends the run *detected* or
*tolerated*.  Determinism is per-channel: the PRNG is seeded by
``(seed, instance)``, so an instance's schedule depends only on its own
frame sequence — never on worker count or interleaving with other
instances.
"""

from __future__ import annotations

import random

from ..config import FleetFaultConfig
from ..errors import FaultError
from ..faults.injector import (
    FLEET_FRAME_FAULTS,
    FLEET_TOLERATED_AT_INJECTION,
    FaultEvent,
    FaultLedger,
)

__all__ = [
    "TransportFaults",
    "backoff_delays",
    "build_ledger",
]


def backoff_delays(
    seed: object, attempts: int, base: int = 4, cap: int = 512
) -> list[int]:
    """Capped exponential backoff with deterministic seeded jitter.

    Delay ``k`` (0-based attempt index) is drawn from
    ``[raw/2, raw]`` where ``raw = min(cap, base * 2**k)`` — the
    classic equal-jitter scheme, so retries spread out instead of
    thundering in lockstep, while every delay stays ``<= cap`` and at
    least half the exponential floor.  The whole schedule is a pure
    function of ``seed``: two calls with equal seeds agree element by
    element, which is what makes a faulted fleet run replayable.
    """
    if attempts < 0:
        raise ValueError(f"attempts must be >= 0, got {attempts}")
    if base < 1:
        raise ValueError(f"base must be >= 1, got {base}")
    if cap < base:
        raise ValueError(f"cap must be >= base, got cap={cap} base={base}")
    rng = random.Random(f"fleet-backoff:{seed}")
    delays = []
    for attempt in range(attempts):
        raw = min(cap, base * (2 ** min(attempt, 32)))
        half = raw // 2
        delays.append(half + rng.randrange(raw - half + 1))
    return delays


class TransportFaults:
    """Per-channel fault schedule (one agent's frames to the daemon)."""

    def __init__(self, config: FleetFaultConfig, instance: str) -> None:
        kinds = config.kinds if config.kinds is not None else FLEET_FRAME_FAULTS
        unknown = set(kinds) - set(FLEET_FRAME_FAULTS)
        if unknown:
            raise FaultError(
                f"unknown fleet fault kind(s) {sorted(unknown)} "
                f"(choose from {FLEET_FRAME_FAULTS})"
            )
        self.config = config
        self.instance = instance
        self.kinds = tuple(kinds)
        self.rng = random.Random(f"fleet:{config.seed}:{instance}")
        self.events: list[FaultEvent] = []

    def frame_fault(self) -> FaultEvent | None:
        """One draw per frame send attempt (original sends only —
        retransmits of a faulted frame always go through, so a schedule
        stays finite and a drop is provably tolerated)."""
        rate = self.config.frame_rate
        if rate <= 0.0 or self.rng.random() >= rate:
            return None
        kind = self.kinds[self.rng.randrange(len(self.kinds))]
        status = (
            "tolerated" if kind in FLEET_TOLERATED_AT_INJECTION else "injected"
        )
        event = FaultEvent(len(self.events), kind, "fleet", status)
        self.events.append(event)
        return event

    def corrupt_position(self, frame_len: int) -> int:
        """Deterministic byte offset to flip in a corrupted frame."""
        return self.rng.randrange(frame_len)

    def delay_ticks(self) -> int:
        """Extra virtual transport ticks a delayed frame is held."""
        return (1 + self.rng.randrange(4)) * self.config.backoff_base


def partition_draw(config: FleetFaultConfig, instance: str, round_no: int) -> bool:
    """Deterministic per-(instance, round) partition decision.

    Drawn from its own PRNG stream so adding frame traffic never
    changes who partitions — the harness computes this before any
    instance runs.
    """
    if config.partition_rate <= 0.0:
        return False
    rng = random.Random(f"fleet-partition:{config.seed}:{instance}:{round_no}")
    return rng.random() < config.partition_rate


def build_ledger(seed: int, events: list[FaultEvent]) -> FaultLedger:
    """Fold per-channel + harness-level events into one fleet ledger.

    Events arrive with per-channel sequence numbers; they are renumbered
    in the deterministic order given (sorted by the harness) so the
    ledger reads as one fleet-wide schedule.
    """
    renumbered = []
    detected = tolerated = 0
    by_kind: dict[str, int] = {}
    for seq, event in enumerate(events):
        event.seq = seq
        renumbered.append(event)
        by_kind[event.kind] = by_kind.get(event.kind, 0) + 1
        if event.status == "detected":
            detected += 1
        elif event.status == "tolerated":
            tolerated += 1
    return FaultLedger(
        seed=seed,
        injected=len(renumbered),
        detected=detected,
        tolerated=tolerated,
        by_kind=by_kind,
        events=tuple(renumbered),
    )
