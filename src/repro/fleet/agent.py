"""One fleet instance: a full COBRA run plus its wire traffic.

:func:`run_instance` is a pure, picklable task — the fleet harness fans
it over :func:`repro.parallel.run_tasks` — that runs one instance's
workload under COBRA with an attached :class:`~repro.fleet.outbox.FleetOutbox`,
then pushes the outbox's frames through that instance's seeded fault
channel (:func:`repro.fleet.transport.simulate_channel`).  The daemon is
*not* in the task: ingestion happens in the parent, in one global
virtual-clock order, so worker count can never reorder daemon state.

A degraded (partitioned / daemon-dead) instance still runs its full
local optimization loop — graceful degradation is "solo mode with the
frames kept for later" — and its clean frames are what the harness
replays at rejoin to reconcile.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable

from ..config import FleetAgentConfig, FleetFaultConfig
from .transport import ChannelResult, simulate_channel
from .wire import encode_frame

__all__ = ["InstanceSpec", "InstanceResult", "run_instance"]


@dataclass(frozen=True)
class InstanceSpec:
    """Everything one instance needs (picklable for process fan-out)."""

    instance: str
    round_no: int
    workload: object                 # validate.WorkloadSpec
    machine: Callable[[], object]    # machine recipe/factory
    strategy: str
    fleet: FleetAgentConfig
    faults: FleetFaultConfig | None = None
    optimize_interval: int | None = None
    max_bundles: int | None = None
    jit: bool | None = None


@dataclass(frozen=True)
class InstanceResult:
    """Digest, runtime metrics, and wire traffic of one instance run."""

    instance: str
    round_no: int
    key: str
    digest: str
    cycles: int
    retired: int
    verified: bool | None
    seeded: int              # decisions re-deployed from the pushed entry
    deployed: int            # deployments made during the run
    batches: int             # window batches queued on the wire
    degraded: bool
    ramp_retired: int | None
    fleet_lines: tuple[str, ...]
    channel: ChannelResult


def run_instance(spec: InstanceSpec) -> InstanceResult:
    """Run one instance solo-equivalent and capture its channel."""
    # deferred: repro.core imports repro.fleet lazily and vice versa
    from ..core.framework import Cobra
    from ..cpu.scheduler import Scheduler
    from ..validate.differential import _digest, _snapshot_arrays

    machine = spec.machine()
    if spec.jit is not None:
        for core in machine.cores:
            core.jit_enabled = spec.jit
    prog = spec.workload.build(machine)
    config = machine.config.cobra
    if spec.optimize_interval is not None:
        config = replace(config, optimize_interval=spec.optimize_interval)
    config = replace(config, fleet=spec.fleet)
    cobra = Cobra(machine, prog.image, spec.strategy, config)
    scheduler = Scheduler([th.core for th in prog.threads])
    cobra.install(scheduler)
    try:
        result = prog.run(max_bundles=spec.max_bundles, scheduler=scheduler)
    finally:
        cobra.stop()
    report = cobra.report()
    digest = _digest(_snapshot_arrays(prog))
    verified = spec.workload.verify(prog) if spec.workload.verify else None

    outbox = cobra.fleet_outbox
    frames = outbox.frames(cobra.optimizer.export_profile_entry())
    times = outbox.send_times(result.retired)
    if spec.fleet.degraded:
        # partitioned: nothing reaches the daemon this round; the clean
        # encodings are the rejoin/reconcile payload
        channel = ChannelResult(clean=[encode_frame(p) for p in frames])
    else:
        channel = simulate_channel(frames, times, spec.faults, spec.instance)

    fl = report.fleet
    if spec.fleet.degraded:
        fl["degraded_interval"] = (0, result.retired)
    counts: dict[str, int] = {}
    for event in channel.events:
        counts[event.kind] = counts.get(event.kind, 0) + 1
    if counts:
        fl["faults"] = counts
    fleet_lines = tuple(
        line for line in report.summary().splitlines()
        if line.lstrip().startswith("fleet[")
    )
    return InstanceResult(
        instance=spec.instance,
        round_no=spec.round_no,
        key=outbox.key,
        digest=digest,
        cycles=result.cycles,
        retired=result.retired,
        verified=verified,
        seeded=fl["seeded"],
        deployed=len(report.deployments),
        batches=fl["batches"],
        degraded=spec.fleet.degraded,
        ramp_retired=report.ramp_retired,
        fleet_lines=fleet_lines,
        channel=channel,
    )
