"""Fleet control plane: one optimization daemon, many COBRA instances.

The BOLT-style deployment model for the runtime optimizer: each machine
runs a thin agent (the unmodified COBRA loop plus an observational
:class:`~repro.fleet.outbox.FleetOutbox`), a central
:class:`~repro.fleet.daemon.FleetDaemon` aggregates their telemetry into
the cross-run profile store and publishes quorum-gated patch decisions
back, and the transport between them is fault-injectable and
CRC-framed.  :class:`~repro.fleet.harness.FleetHarness` drives a whole
fleet and proves the robustness contract (solo-identical outputs,
decision reuse, idempotent ingestion, crash recovery, accounted faults).

Import note: this package never imports :mod:`repro.core` at module
scope (and vice versa) — the runtime pulls the outbox in lazily, and
the daemon defers its scratch-profiler validation import.
"""

from .agent import InstanceResult, InstanceSpec, run_instance
from .daemon import FLEET_JOURNAL, FleetDaemon, SeenSet
from .faults import TransportFaults, backoff_delays, build_ledger, partition_draw
from .harness import FleetHarness, FleetRecord, FleetReport
from .outbox import FleetOutbox
from .transport import ChannelResult, Delivery, simulate_channel
from .wire import (
    FRAME_KINDS,
    batch_frame,
    decode_frame,
    encode_frame,
    hello_frame,
    profile_frame,
)

__all__ = [
    "FRAME_KINDS",
    "FLEET_JOURNAL",
    "ChannelResult",
    "Delivery",
    "FleetDaemon",
    "FleetHarness",
    "FleetOutbox",
    "FleetRecord",
    "FleetReport",
    "InstanceResult",
    "InstanceSpec",
    "SeenSet",
    "TransportFaults",
    "backoff_delays",
    "batch_frame",
    "build_ledger",
    "decode_frame",
    "encode_frame",
    "hello_frame",
    "partition_draw",
    "profile_frame",
    "run_instance",
    "simulate_channel",
]
