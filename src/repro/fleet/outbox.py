"""Agent-side telemetry outbox.

The fleet agent's half of the split is deliberately thin: the full
COBRA runtime (monitors, profiler, optimizer, trace cache) still runs
in-process exactly as in a solo run, and the outbox only *observes* it
— one :class:`~repro.hpm.batch.WindowBatch` per optimizer wake (or per
``flush_interval`` wakes), plus the run's final mergeable profile
entry.  It never mutates runtime state and draws no randomness, which
is what keeps a fleet instance's outputs and cycle counts bit-identical
to the same run without an outbox.
"""

from __future__ import annotations

from ..hpm.batch import WindowBatch
from .wire import batch_frame, hello_frame, profile_frame

__all__ = ["FleetOutbox"]


class FleetOutbox:
    """Collects sequence-numbered wire frames during one instance run."""

    def __init__(
        self, instance: str, key: str, digest: str, flush_interval: int = 1
    ) -> None:
        self.instance = instance
        self.key = key
        self.digest = digest
        self.flush_interval = flush_interval
        self.windows: list[WindowBatch] = []
        self._wakes = 0
        # monotonic batch ordinal: equals len(windows) until the
        # governor sheds oldest batches under an outbox bound, after
        # which ordinals must keep advancing (the daemon quarantines
        # window-ordinal conflicts; gaps are fine)
        self._window_seq = 0
        self._last_samples = 0
        self._last_quarantined = 0

    def on_wake(self, retired: int, window_cpi: float, profiler) -> None:
        """Optimizer wake hook (wired like the persistence hook)."""
        self._wakes += 1
        if self._wakes % self.flush_interval:
            return
        batch = WindowBatch(
            window=self._window_seq,
            retired=retired,
            samples=profiler.samples_seen - self._last_samples,
            quarantined=profiler.quarantined_total - self._last_quarantined,
            cpi=round(window_cpi, 6),
        )
        self._window_seq += 1
        self._last_samples = profiler.samples_seen
        self._last_quarantined = profiler.quarantined_total
        self.windows.append(batch)

    def frames(self, entry: dict) -> list[dict]:
        """The run's full wire traffic: hello, window batches, profile.

        Sequence numbers are dense per instance: hello is 0, batches
        follow, the final profile entry is last.
        """
        frames = [hello_frame(self.instance, self.key, self.digest)]
        for batch in self.windows:
            frames.append(
                batch_frame(
                    self.instance, len(frames), self.key, batch.to_payload()
                )
            )
        frames.append(
            profile_frame(self.instance, len(frames), self.key, self.digest, entry)
        )
        return frames

    def send_times(self, final_retired: int) -> list[int]:
        """Virtual send tick per frame (hello first, profile last)."""
        times = [0]
        times.extend(batch.retired for batch in self.windows)
        times.append(max(final_retired, times[-1] + 1))
        return times
