"""Fleet harness: fan instances out, ingest centrally, prove invariants.

The harness is the offline-deterministic control plane driver.  It runs
a fleet in two rounds — a **cold** half that profiles from scratch and a
**warm** half dispatched with the daemon's quorum-published entry — with
every instance a pure picklable task over :func:`repro.parallel.run_tasks`
(``--jobs N`` never changes a byte of the report).  Between rounds the
parent ingests every channel's deliveries through one
:class:`~repro.fleet.daemon.FleetDaemon` in global virtual-clock order,
optionally crashing and recovering the daemon mid-ingest, then replays
every instance's *clean* frames as the rejoin/reconcile pass (degraded
instances merge in here; everyone else dedups to a no-op).

Proved per run, recorded in :class:`FleetReport`:

* every instance's output digest is bit-identical to the solo-run
  reference, under any transport fault schedule;
* decisions proven on cold instances are published once quorum-backed
  and re-deployed by warm instances (the ramp collapses);
* ingestion is idempotent — a full second reconcile replay leaves the
  daemon's canonical state byte-identical;
* a crashed daemon recovers to the same canonical state a never-crashed
  shadow daemon reaches on the same deliveries;
* every injected transport fault is detected or tolerated in the ledger.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from ..config import FleetAgentConfig, FleetFaultConfig
from ..errors import FleetError
from ..faults.injector import FaultEvent, FaultLedger
from ..parallel import run_tasks
from ..persist.journal import MemoryDisk
from .agent import InstanceResult, InstanceSpec, run_instance
from .daemon import FLEET_JOURNAL, FleetDaemon
from .faults import build_ledger, partition_draw

__all__ = ["FleetRecord", "FleetReport", "FleetHarness"]


@dataclass(frozen=True)
class FleetRecord:
    """One instance's run, as the fleet report sees it."""

    instance: str
    round: str               # "cold" | "warm"
    digest: str
    cycles: int
    retired: int
    ramp_retired: int | None
    seeded: int
    deployed: int
    batches: int
    degraded: bool
    quarantined: bool
    delivered: int
    verified: bool | None


@dataclass
class FleetReport:
    """Deterministic fleet-run report (byte-identical at any ``--jobs``)."""

    workload: str
    instances: int
    cold: int
    warm: int
    quorum: int
    reference_digest: str
    key: str
    records: list[FleetRecord]
    published: int
    daemon: dict
    ledger: FaultLedger | None
    failures: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        lines = [
            f"fleet[{self.workload}]: {self.instances} instance(s) "
            f"({self.cold} cold + {self.warm} warm), quorum={self.quorum}, "
            f"{'OK' if self.ok else 'FAIL'}"
        ]
        d = self.daemon
        lines.append(
            f"  daemon: {d['batches_accepted']} frame(s) accepted, "
            f"{d['crc_rejects']} crc reject(s), {d['duplicates']} duplicate(s), "
            f"{d['snapshots_written']} snapshot(s), "
            f"{self.published} published decision(s)"
        )
        if d.get("recovered") is not None:
            rec = d["recovered"]
            lines.append(
                f"  recovery: crash at batch {rec['crash_batch']}; resumed from "
                f"snapshot v{rec['snapshot_version']} + {rec['replayed']} "
                f"journal record(s), {len(rec['discarded'])} torn artifact(s) "
                f"discarded"
            )
        seeded = [r for r in self.records if r.round == "warm" and r.seeded]
        if self.warm:
            cold_ramps = [
                r.ramp_retired for r in self.records
                if r.round == "cold" and r.ramp_retired is not None
            ]
            warm_ramps = [
                r.ramp_retired for r in self.records
                if r.round == "warm" and r.ramp_retired is not None
                and (not seeded or r.seeded)
            ]
            cold_ramp = max(cold_ramps) if cold_ramps else 0
            warm_ramp = max(warm_ramps) if warm_ramps else 0
            lines.append(
                f"  warm start: {len(seeded)}/{self.warm} warm instance(s) "
                f"re-deployed published decisions, ramp {cold_ramp} -> "
                f"{warm_ramp} retired"
            )
        degraded = sorted(r.instance for r in self.records if r.degraded)
        if degraded:
            lines.append(
                f"  degraded: {len(degraded)} instance(s) ran local-only and "
                f"reconciled at rejoin ({', '.join(degraded)})"
            )
        for inst, reason in sorted(d.get("quarantined", {}).items()):
            lines.append(f"  quarantined[{inst}]: {reason}")
        if self.ledger is not None:
            by_kind = ", ".join(
                f"{kind}={count}"
                for kind, count in sorted(self.ledger.by_kind.items())
            )
            lines.append(
                f"  faults[fleet]: {self.ledger.injected} injected, "
                f"{self.ledger.detected} detected, "
                f"{self.ledger.tolerated} tolerated"
                + (f" ({by_kind})" if by_kind else "")
            )
        mismatched = sorted(
            r.instance for r in self.records if r.digest != self.reference_digest
        )
        if mismatched:
            lines.append(f"  digests: MISMATCH vs solo on {', '.join(mismatched)}")
        else:
            lines.append(
                f"  digests: all {len(self.records)} bit-identical to solo "
                f"reference {self.reference_digest[:12]}"
            )
        for failure in self.failures:
            lines.append(f"  FAIL: {failure}")
        return "\n".join(lines)

    def to_json(self) -> str:
        payload = {
            "workload": self.workload,
            "instances": self.instances,
            "cold": self.cold,
            "warm": self.warm,
            "quorum": self.quorum,
            "reference_digest": self.reference_digest,
            "key": self.key,
            "published": self.published,
            "daemon": self.daemon,
            "records": [
                {
                    "instance": r.instance,
                    "round": r.round,
                    "digest": r.digest,
                    "cycles": r.cycles,
                    "retired": r.retired,
                    "ramp_retired": r.ramp_retired,
                    "seeded": r.seeded,
                    "deployed": r.deployed,
                    "batches": r.batches,
                    "degraded": r.degraded,
                    "quarantined": r.quarantined,
                    "delivered": r.delivered,
                    "verified": r.verified,
                }
                for r in self.records
            ],
            "ledger": None
            if self.ledger is None
            else {
                "seed": self.ledger.seed,
                "injected": self.ledger.injected,
                "detected": self.ledger.detected,
                "tolerated": self.ledger.tolerated,
                "accounted": self.ledger.accounted,
                "by_kind": dict(sorted(self.ledger.by_kind.items())),
            },
            "failures": self.failures,
            "ok": self.ok,
        }
        return json.dumps(payload, sort_keys=True, indent=2)


class FleetHarness:
    """Runs one fleet (cold round, central ingest, warm round, checks)."""

    def __init__(
        self,
        workload=None,
        machine=None,
        instances: int = 8,
        quorum: int | None = None,
        strategy: str = "adaptive",
        optimize_interval: int | None = 10_000,
        faults: FleetFaultConfig | None = None,
        flush_interval: int = 1,
        max_bundles: int | None = None,
        snapshot_interval: int = 32,
        reference_digest: str | None = None,
        jit: bool | None = None,
    ) -> None:
        if instances < 1:
            raise FleetError(f"instances must be >= 1, got {instances}")
        # deferred: repro.validate imports repro.core which lazily uses fleet
        from ..validate.differential import MachineRecipe, daxpy_spec

        self.workload = workload if workload is not None else daxpy_spec(2048, 4, 12)
        self.machine = machine if machine is not None else MachineRecipe("smp", 4, 4)
        self.instances = instances
        self.cold = max(1, instances // 2)
        self.warm = instances - self.cold
        quorum = quorum if quorum is not None else min(2, self.cold)
        if not 1 <= quorum <= instances:
            raise FleetError(
                f"quorum must be in [1, {instances}], got {quorum}"
            )
        self.quorum = quorum
        self.strategy = strategy
        self.optimize_interval = optimize_interval
        self.faults = faults
        self.flush_interval = flush_interval
        self.max_bundles = max_bundles
        self.snapshot_interval = snapshot_interval
        self.reference_digest = reference_digest
        self.jit = jit

    # -- instance naming (zero-padded so sorted order == numeric order) ----

    def _names(self) -> list[str]:
        width = len(str(self.instances - 1)) if self.instances > 1 else 1
        return [f"i{idx:0{width}d}" for idx in range(self.instances)]

    def _spec(
        self, name: str, round_no: int, degraded: bool,
        published: int, quarantined: int, entry: dict | None,
    ) -> InstanceSpec:
        fleet = FleetAgentConfig(
            instance=name,
            instances=self.instances,
            quorum=self.quorum,
            published=published,
            quarantined=quarantined,
            degraded=degraded,
            entry=None if degraded else entry,
            flush_interval=self.flush_interval,
        )
        return InstanceSpec(
            instance=name,
            round_no=round_no,
            workload=self.workload,
            machine=self.machine,
            strategy=self.strategy,
            fleet=fleet,
            faults=None if degraded else self.faults,
            optimize_interval=self.optimize_interval,
            max_bundles=self.max_bundles,
            jit=self.jit,
        )

    def _reference(self) -> str:
        from dataclasses import replace

        from ..core.framework import run_with_cobra
        from ..validate.differential import _digest, _snapshot_arrays

        machine = self.machine()
        if self.jit is not None:
            for core in machine.cores:
                core.jit_enabled = self.jit
        prog = self.workload.build(machine)
        config = machine.config.cobra
        if self.optimize_interval is not None:
            config = replace(config, optimize_interval=self.optimize_interval)
        run_with_cobra(prog, self.strategy, config, max_bundles=self.max_bundles)
        return _digest(_snapshot_arrays(prog))

    # -- central ingest ------------------------------------------------------

    def _ingest(
        self,
        daemon: FleetDaemon,
        shadow: FleetDaemon,
        results: list[InstanceResult],
        state: dict,
    ) -> FleetDaemon:
        """Replay this round's deliveries in global virtual-clock order."""
        deliveries = []
        for res in results:
            for d in res.channel.delivered:
                deliveries.append((d.tick, res.instance, d.ordinal, d.data))
        deliveries.sort(key=lambda item: item[:3])
        crash_at = self.faults.daemon_crash_batch if self.faults else None
        for _tick, _inst, _ordinal, data in deliveries:
            if (
                crash_at is not None
                and not state["crashed"]
                and daemon.batches_accepted >= crash_at
            ):
                daemon = self._crash(daemon, state)
            daemon.handle(data)
            shadow.handle(data)
        return daemon

    def _crash(self, daemon: FleetDaemon, state: dict) -> FleetDaemon:
        """Kill the daemon mid-ingest and recover a fresh one from disk."""
        disk = daemon.disk
        # volatile counters die with the process; carry them at the
        # harness so fleet-wide accounting spans the crash
        state["crc_rejects"] += daemon.crc_rejects
        state["duplicates"] += daemon.duplicates
        state["snapshots_written"] += daemon.snapshots_written
        crash_batch = daemon.batches_accepted
        # a torn half-record at the journal tail: the write the crash
        # interrupted; recovery must truncate it away
        disk.append(FLEET_JOURNAL, b"\xba\xc0torn-by-daemon-crash")
        recovered = FleetDaemon.recover(
            disk,
            quorum=self.quorum,
            snapshot_interval=self.snapshot_interval,
            snapshots_kept=daemon.snapshots_kept,
        )
        event = FaultEvent(0, "daemon_crash", "fleet", "detected")
        event.note = (
            f"crash at batch {crash_batch}; recovered from snapshot "
            f"v{recovered.recovered['snapshot_version']} + "
            f"{recovered.recovered['replayed']} journal record(s)"
        )
        state["events"].append(event)
        state["crashed"] = True
        state["recovered"] = dict(recovered.recovered, crash_batch=crash_batch)
        return recovered

    def _reconcile(
        self, daemon: FleetDaemon, results: list[InstanceResult]
    ) -> None:
        """Rejoin replay: every instance's clean frames, in order.

        Degraded instances make first contact here (their profile merges
        in); everyone else's frames dedup to no-ops; quarantined streams
        stay refused.  Running it is also the idempotence proof's setup.
        """
        for res in sorted(results, key=lambda r: r.instance):
            for data in res.channel.clean:
                daemon.handle(data)

    # -- fault accounting ----------------------------------------------------

    def _claim(
        self,
        daemon: FleetDaemon,
        results: list[InstanceResult],
        state: dict,
        failures: list[str],
    ) -> None:
        """Settle injected (not yet tolerated) events against daemon state."""
        for res in sorted(results, key=lambda r: r.instance):
            for event in res.channel.events:
                if event.kind == "corrupt_frame":
                    event.status = "detected"
                    event.note = (
                        "CRC reject at daemon; clean retransmit accepted"
                    )
                elif event.kind == "poison_batch":
                    reason = daemon.quarantined.get(res.instance)
                    if reason is None:
                        failures.append(
                            f"{res.instance}: poisoned stream was not "
                            f"quarantined by the daemon sanitizer"
                        )
                    else:
                        event.status = "detected"
                        event.note = f"sanitizer quarantine: {reason}"
            state["events"].extend(res.channel.events)
        # every corrupt delivery — and nothing else — fails the CRC
        expected_crc = sum(
            1
            for res in results
            for event in res.channel.events
            if event.kind == "corrupt_frame"
        )
        state["expected_crc"] += expected_crc

    # -- the run -------------------------------------------------------------

    def run(self, jobs: int = 1) -> FleetReport:
        reference = (
            self.reference_digest
            if self.reference_digest is not None
            else self._reference()
        )
        names = self._names()
        cold_names = names[: self.cold]
        warm_names = names[self.cold :]
        failures: list[str] = []
        state = {
            "crashed": False,
            "recovered": None,
            "crc_rejects": 0,
            "duplicates": 0,
            "snapshots_written": 0,
            "expected_crc": 0,
            "events": [],
        }

        daemon = FleetDaemon(
            MemoryDisk(), quorum=self.quorum,
            snapshot_interval=self.snapshot_interval,
        )
        # the shadow never crashes: recovery must be state-invisible
        shadow = FleetDaemon(
            MemoryDisk(), quorum=self.quorum,
            snapshot_interval=self.snapshot_interval,
        )

        def round_events(results: list[InstanceResult]) -> None:
            for res in sorted(results, key=lambda r: r.instance):
                if res.degraded:
                    event = FaultEvent(0, "partition", "fleet", "detected")
                    event.note = (
                        "degraded to local-only optimization; profile "
                        "merged at rejoin"
                    )
                    state["events"].append(event)

        # -- round 0: cold half ------------------------------------------
        cold_specs = [
            self._spec(
                name, 0,
                degraded=bool(self.faults)
                and partition_draw(self.faults, name, 0),
                published=0, quarantined=0, entry=None,
            )
            for name in cold_names
        ]
        cold_results = run_tasks(
            [(run_instance, (spec,)) for spec in cold_specs], jobs=jobs
        )
        round_events(cold_results)
        daemon = self._ingest(daemon, shadow, cold_results, state)
        self._reconcile(daemon, cold_results)
        self._reconcile(shadow, cold_results)
        self._claim(daemon, cold_results, state, failures)

        key = cold_results[0].key
        entry = daemon.published_entry(key)
        published = daemon.published_count(key)
        eligible = [
            res for res in cold_results
            if res.instance not in daemon.quarantined
        ]
        if (
            len(eligible) >= self.quorum
            and any(res.deployed for res in eligible)
            and published < 1
        ):
            failures.append(
                f"{len(eligible)} eligible contributor(s) >= quorum "
                f"{self.quorum} with proven decisions, but nothing published"
            )

        # -- round 1: warm half, dispatched with the published entry ------
        warm_specs = [
            self._spec(
                name, 1,
                degraded=bool(self.faults)
                and partition_draw(self.faults, name, 1),
                published=published,
                quarantined=len(daemon.quarantined),
                entry=entry,
            )
            for name in warm_names
        ]
        warm_results = run_tasks(
            [(run_instance, (spec,)) for spec in warm_specs], jobs=jobs
        )
        round_events(warm_results)
        daemon = self._ingest(daemon, shadow, warm_results, state)
        self._reconcile(daemon, warm_results)
        self._reconcile(shadow, warm_results)
        self._claim(daemon, warm_results, state, failures)

        # -- invariants ----------------------------------------------------
        all_results = cold_results + warm_results
        for res in all_results:
            if res.digest != reference:
                failures.append(
                    f"{res.instance}: output digest {res.digest[:12]} != "
                    f"solo reference {reference[:12]}"
                )
            if res.verified is False:
                failures.append(f"{res.instance}: workload verification failed")
            if res.key != key:
                failures.append(f"{res.instance}: profile key mismatch")

        if published >= 1:
            for res in warm_results:
                if not res.degraded and res.seeded < 1:
                    failures.append(
                        f"{res.instance}: warm instance failed to re-deploy "
                        f"any of {published} published decision(s)"
                    )

        before = daemon.canonical_state()
        self._reconcile(daemon, cold_results)
        self._reconcile(daemon, warm_results)
        if daemon.canonical_state() != before:
            failures.append(
                "reconcile replay is not idempotent: daemon state changed "
                "on second delivery of identical frames"
            )
        if daemon.canonical_state() != shadow.canonical_state():
            failures.append(
                "recovered daemon state diverges from the never-crashed "
                "shadow daemon on identical deliveries"
            )

        total_crc = state["crc_rejects"] + daemon.crc_rejects
        if total_crc != state["expected_crc"]:
            failures.append(
                f"CRC accounting: daemon rejected {total_crc} frame(s), "
                f"injector corrupted {state['expected_crc']}"
            )

        ledger = None
        if self.faults is not None:
            ledger = build_ledger(self.faults.seed, state["events"])
            if not ledger.accounted:
                failures.append(
                    "transport fault ledger has unaccounted injected events"
                )

        records = [
            FleetRecord(
                instance=res.instance,
                round="cold" if res.round_no == 0 else "warm",
                digest=res.digest,
                cycles=res.cycles,
                retired=res.retired,
                ramp_retired=res.ramp_retired,
                seeded=res.seeded,
                deployed=res.deployed,
                batches=res.batches,
                degraded=res.degraded,
                quarantined=res.instance in daemon.quarantined,
                delivered=len(res.channel.delivered),
                verified=res.verified,
            )
            for res in all_results
        ]
        daemon_stats = {
            "batches_accepted": daemon.batches_accepted,
            "crc_rejects": total_crc,
            "duplicates": state["duplicates"] + daemon.duplicates,
            "snapshots_written": state["snapshots_written"]
            + daemon.snapshots_written,
            "quarantined": dict(sorted(daemon.quarantined.items())),
            "recovered": state["recovered"],
        }
        return FleetReport(
            workload=self.workload.name,
            instances=self.instances,
            cold=self.cold,
            warm=self.warm,
            quorum=self.quorum,
            reference_digest=reference,
            key=key,
            records=records,
            published=published,
            daemon=daemon_stats,
            ledger=ledger,
            failures=failures,
        )
