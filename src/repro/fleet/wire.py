"""Fleet wire format: one journal-codec record per frame.

The transport between a fleet agent and the daemon reuses the
write-ahead journal's framing (:mod:`repro.persist.journal`): magic,
flags, length, CRC-32 over header+payload, canonical-JSON body.  The
CRC is the transport's integrity check — a corrupted frame fails
:func:`decode_frame` at the daemon exactly like a torn journal record
fails recovery, and the sender retransmits.

Frame kinds (the ``"k"`` payload key):

``hello`` (agent → daemon)
    Registers instance ``i`` for profile key ``key`` with the full
    binary image digest ``digest`` (the consensus check input).  The
    daemon's reply carries the current quorum-published entry.

``batch`` (agent → daemon)
    One :class:`~repro.hpm.batch.WindowBatch` payload under ``window``,
    sequence-numbered by ``n``.  Idempotent: the daemon drops ``n``
    values it has already accepted, so duplicates and reorders are
    no-ops.

``profile`` (agent → daemon)
    The run's final mergeable profile entry (``entry``, the
    :func:`repro.persist.profiledb.merge_entries` operand) plus the
    image digest again, sequence-numbered like a batch.
"""

from __future__ import annotations

from ..persist.journal import encode_record, scan_journal

__all__ = [
    "FRAME_KINDS",
    "encode_frame",
    "decode_frame",
    "hello_frame",
    "batch_frame",
    "profile_frame",
]

FRAME_KINDS = ("hello", "batch", "profile")


def encode_frame(payload: dict) -> bytes:
    """Frame one wire payload (journal record framing, CRC-guarded)."""
    return encode_record(payload)


def decode_frame(data: bytes) -> dict | None:
    """Decode one frame; ``None`` if the CRC (or any framing) fails.

    A frame must be exactly one valid record — trailing bytes mean a
    truncated/concatenated transmission and are rejected wholesale.
    """
    records, valid_len, _discarded = scan_journal(bytes(data))
    if len(records) != 1 or valid_len != len(data):
        return None
    return records[0]


def hello_frame(instance: str, key: str, digest: str) -> dict:
    return {"k": "hello", "i": instance, "n": 0, "key": key, "digest": digest}


def batch_frame(instance: str, seq: int, key: str, window: dict) -> dict:
    return {"k": "batch", "i": instance, "n": seq, "key": key, "window": window}


def profile_frame(
    instance: str, seq: int, key: str, digest: str, entry: dict
) -> dict:
    return {
        "k": "profile",
        "i": instance,
        "n": seq,
        "key": key,
        "digest": digest,
        "entry": entry,
    }
