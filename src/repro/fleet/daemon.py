"""The fleet optimization daemon.

One daemon serves a fleet of agent instances running the same binary
image (the BOLT data-center model): it ingests their telemetry frames,
folds their end-of-run profile entries into a shared store keyed by
binary digest × machine descriptor × strategy (the profile-database
key), and publishes patch decisions back — but only once a configurable
**quorum** of independent, non-quarantined instances has reported
net-proven evidence for the same ``(loop, optimization)`` pair.

Defensive admission, in order, for every frame:

1. **CRC** — a frame that fails the journal-codec framing is rejected
   outright (the transport retransmits);
2. **quarantine** — frames from a quarantined instance are refused;
3. **sequence dedup** — a per-instance seen-set makes duplicated and
   reordered frames no-ops (idempotent ingestion);
4. **sanitizer** — window batches pass the same field-level range
   checks the profiler applies to raw samples
   (:meth:`repro.hpm.batch.WindowBatch.anomaly`), plus stream checks:
   two batches claiming the same window ordinal with different content
   (``window-conflict``) or a retired count that runs backwards
   (``time-travel``) quarantine the stream; profile entries are
   structurally validated, including a scratch-profiler restore of the
   embedded profiler state;
5. **consensus** — an instance whose image digest diverges from a
   quorum-backed consensus for the same key is quarantined (a poisoned
   or mismatched binary must never steer fleet-wide patches).

Durability reuses :mod:`repro.persist` wholesale: every accepted frame
is journaled (CRC-framed WAL, own ``fleet.wal`` namespace), state is
periodically snapshotted through the checksummed snapshot codec, and
:meth:`FleetDaemon.recover` rebuilds a crashed daemon from newest valid
snapshot + journal tail — retransmits of already-accepted batches then
dedup against the recovered seen-sets, so a crash mid-fleet is
invisible to agents beyond latency.
"""

from __future__ import annotations

import json
import math

from ..persist.journal import Disk, JournalWriter, MemoryDisk, scan_journal
from ..persist.profiledb import empty_entry, merge_entries
from ..persist.snapshot import SnapshotStore
from .wire import decode_frame

__all__ = ["FLEET_JOURNAL", "FleetDaemon", "SeenSet"]

#: Journal file name inside the daemon's disk namespace (kept distinct
#: from the per-run checkpoint journal so one disk can host both).
FLEET_JOURNAL = "fleet.wal"

_ENTRY_COUNTS = ("runs", "cpi_count", "flips")
_DECISION_FIELDS = ("proven", "rolled_back", "back_branch", "hotness")


class SeenSet:
    """Per-instance dedup set, compacted to a contiguous prefix.

    Accepted sequence numbers are dense per instance in the normal case
    (the outbox numbers frames 0..N, where seq 0 is the hello — which
    is stateless and never enters the dedup set), so a plain set of
    every integer ever accepted grows without bound for the life of the
    daemon.  This keeps the same membership semantics in
    O(out-of-order residue) space: ``watermark`` asserts every seq in
    ``[1, watermark)`` was seen, and ``residue`` holds the sparse
    out-of-order arrivals at or above it.  Adding the watermark itself
    drains any now-contiguous residue, so an instance whose frames all
    eventually arrive compacts to an empty residue regardless of
    delivery order.

    The (watermark, residue) pair is a canonical function of the seen
    *set* — independent of arrival order — which keeps snapshot bytes
    and :meth:`FleetDaemon.canonical_state` convergent.
    """

    __slots__ = ("watermark", "residue")

    def __init__(self, watermark: int = 1, residue=()) -> None:
        self.watermark = watermark
        self.residue: set[int] = set(residue)

    def __contains__(self, seq: int) -> bool:
        return 1 <= seq < self.watermark or seq in self.residue

    def __len__(self) -> int:
        return (self.watermark - 1) + len(self.residue)

    def add(self, seq: int) -> None:
        if seq in self:
            return
        if seq == self.watermark:
            self.watermark += 1
            while self.watermark in self.residue:
                self.residue.discard(self.watermark)
                self.watermark += 1
        else:
            self.residue.add(seq)

    def to_payload(self) -> dict:
        return {"w": self.watermark, "r": sorted(self.residue)}

    @classmethod
    def from_payload(cls, payload) -> "SeenSet":
        """Restore from a snapshot payload.

        Accepts the compact ``{"w": ..., "r": [...]}`` form and, for
        snapshots written before compaction existed, a plain list of
        sequence numbers (replayed through :meth:`add` so the restored
        set is identically compacted).
        """
        if isinstance(payload, dict):
            return cls(payload.get("w", 1), payload.get("r", ()))
        seen = cls()
        for seq in sorted(payload):
            seen.add(seq)
        return seen


class FleetDaemon:
    """Central optimizer service for a fleet of agent instances."""

    def __init__(
        self,
        disk: Disk | None = None,
        quorum: int = 1,
        snapshot_interval: int = 8,
        snapshots_kept: int = 3,
        window_budget: int | None = None,
    ) -> None:
        if quorum < 1:
            raise ValueError(f"quorum must be >= 1, got {quorum}")
        if snapshot_interval < 1:
            raise ValueError(
                f"snapshot_interval must be >= 1, got {snapshot_interval}"
            )
        if window_budget is not None and window_budget < 1:
            raise ValueError(f"window_budget must be >= 1, got {window_budget}")
        self.disk = disk if disk is not None else MemoryDisk()
        self.quorum = quorum
        self.snapshot_interval = snapshot_interval
        self.snapshots_kept = snapshots_kept
        #: per-instance cap on retained window batches; the oldest
        #: ordinals are shed after each accept (top-K of a set is
        #: canonical, so bounded daemons stay convergent)
        self.window_budget = window_budget
        #: registered instances (hello received)
        self.instances: set[str] = set()
        #: per-instance accepted frame sequence numbers (the dedup set,
        #: compacted to watermark + out-of-order residue)
        self.seen: dict[str, SeenSet] = {}
        #: per-instance accepted window batches: ordinal -> content tuple
        self.windows: dict[str, dict[int, tuple]] = {}
        #: per-key, per-instance image digests (consensus input)
        self.digests: dict[str, dict[str, str]] = {}
        #: per-key, per-instance merged profile entries
        self.store: dict[str, dict[str, dict]] = {}
        #: quarantined instances: instance -> first reason
        self.quarantined: dict[str, str] = {}
        self.batches_accepted = 0
        self.crc_rejects = 0
        self.duplicates = 0
        self.snapshots_written = 0
        #: recovery stats when built via :meth:`recover`
        self.recovered: dict | None = None
        self.journal = JournalWriter(self.disk, name=FLEET_JOURNAL)
        self._snapshots = SnapshotStore(self.disk)

    # -- frame ingestion ---------------------------------------------------

    def handle(self, data: bytes) -> dict:
        """Ingest one wire frame; return the reply payload."""
        frame = decode_frame(data)
        if frame is None:
            self.crc_rejects += 1
            return {"k": "nack", "reason": "crc"}
        kind = frame.get("k")
        instance = frame.get("i")
        seq = frame.get("n")
        key = frame.get("key")
        if (
            kind not in ("hello", "batch", "profile")
            or not isinstance(instance, str)
            or not isinstance(seq, int)
            or isinstance(seq, bool)
            or seq < 0
            or not isinstance(key, str)
        ):
            self.crc_rejects += 1
            return {"k": "nack", "reason": "malformed"}
        if kind == "hello":
            return self._handle_hello(frame, instance, key)
        if instance in self.quarantined:
            return {"k": "ack", "status": "quarantined"}
        if seq in self.seen.get(instance, ()):
            self.duplicates += 1
            return {"k": "ack", "status": "dup"}
        if kind == "batch":
            return self._handle_batch(frame, instance, seq, key)
        return self._handle_profile(frame, instance, seq, key)

    def _handle_hello(self, frame: dict, instance: str, key: str) -> dict:
        digest = frame.get("digest")
        if not isinstance(digest, str) or not digest:
            self.crc_rejects += 1
            return {"k": "nack", "reason": "malformed"}
        fresh = instance not in self.instances
        changed = self.digests.get(key, {}).get(instance) != digest
        self.instances.add(instance)
        self._note_digest(key, instance, digest)
        if fresh or changed:
            self.journal.append(
                "fleet-hello", {"i": instance, "key": key, "digest": digest}
            )
        return {
            "k": "welcome",
            "entry": self.published_entry(key),
            "published": self.published_count(key),
            "quarantined": len(self.quarantined),
            "instances": len(self.instances),
        }

    def _handle_batch(self, frame: dict, instance: str, seq: int, key: str) -> dict:
        from ..hpm.batch import WindowBatch

        try:
            batch = WindowBatch.from_payload(frame.get("window"))
        except ValueError as exc:
            return self._quarantine(instance, f"batch-damage: {exc}")
        reason = batch.anomaly()
        if reason is not None:
            return self._quarantine(instance, reason)
        content = (batch.retired, batch.samples, batch.quarantined, batch.cpi)
        accepted = self.windows.setdefault(instance, {})
        prior = accepted.get(batch.window)
        if prior is not None and prior != content:
            # a second, different batch for the same window ordinal:
            # the stream is rewriting history (cf. stale-index)
            return self._quarantine(instance, "window-conflict")
        for ordinal, other in accepted.items():
            if ordinal < batch.window and other[0] > batch.retired:
                return self._quarantine(instance, "time-travel")
            if ordinal > batch.window and other[0] < batch.retired:
                return self._quarantine(instance, "time-travel")
        accepted[batch.window] = content
        self._shed_windows(accepted)
        self.seen.setdefault(instance, SeenSet()).add(seq)
        self.journal.append(
            "fleet-batch",
            {"i": instance, "n": seq, "key": key, "window": batch.to_payload()},
        )
        self._accepted_one()
        return {"k": "ack", "status": "ok"}

    def _handle_profile(self, frame: dict, instance: str, seq: int, key: str) -> dict:
        entry = frame.get("entry")
        reason = self._entry_anomaly(entry)
        if reason is not None:
            return self._quarantine(instance, reason)
        digest = frame.get("digest")
        if not isinstance(digest, str) or not digest:
            self.crc_rejects += 1
            return {"k": "nack", "reason": "malformed"}
        self._note_digest(key, instance, digest)
        if instance in self.quarantined:
            # the digest note just quarantined this very stream
            return {"k": "ack", "status": "quarantined"}
        slot = self.store.setdefault(key, {})
        existing = slot.get(instance)
        slot[instance] = entry if existing is None else merge_entries(existing, entry)
        self.seen.setdefault(instance, SeenSet()).add(seq)
        self.journal.append(
            "fleet-profile",
            {"i": instance, "n": seq, "key": key, "digest": digest, "entry": entry},
        )
        self._accepted_one()
        return {"k": "ack", "status": "ok"}

    # -- defensive admission helpers ---------------------------------------

    def _shed_windows(self, accepted: dict[int, tuple]) -> None:
        """Enforce ``window_budget`` by dropping the oldest ordinals.

        Shedding after every accept keeps the retained dict equal to the
        top-K ordinals of everything accepted so far, whatever order the
        frames arrived in — dedup still holds because the *sequence*
        numbers stay in the seen-set even after their windows are shed.
        """
        if self.window_budget is None or len(accepted) <= self.window_budget:
            return
        for ordinal in sorted(accepted)[: len(accepted) - self.window_budget]:
            del accepted[ordinal]

    def _quarantine(self, instance: str, reason: str) -> dict:
        if instance not in self.quarantined:
            self.quarantined[instance] = reason
            self.journal.append(
                "fleet-quarantine", {"i": instance, "reason": reason}
            )
        return {"k": "ack", "status": "quarantined", "reason": reason}

    def _note_digest(self, key: str, instance: str, digest: str) -> None:
        slot = self.digests.setdefault(key, {})
        slot[instance] = digest
        counts: dict[str, int] = {}
        for inst, d in slot.items():
            if inst not in self.quarantined:
                counts[d] = counts.get(d, 0) + 1
        if not counts:
            return
        best = max(counts.values())
        winners = [d for d, c in sorted(counts.items()) if c == best]
        if best < self.quorum or len(winners) != 1:
            # no digest commands a strict, quorum-backed majority yet
            return
        consensus = winners[0]
        for inst in sorted(slot):
            if inst not in self.quarantined and slot[inst] != consensus:
                self._quarantine(inst, "digest-divergence vs fleet consensus")

    def _entry_anomaly(self, entry: object) -> str | None:
        """Structural validation of a pushed profile entry."""
        if not isinstance(entry, dict):
            return "entry-type"
        for name in _ENTRY_COUNTS:
            value = entry.get(name)
            if not isinstance(value, int) or isinstance(value, bool) or value < 0:
                return f"entry-{name}-range"
        cpi_total = entry.get("cpi_total")
        if (
            not isinstance(cpi_total, (int, float))
            or isinstance(cpi_total, bool)
            or not math.isfinite(cpi_total)
            or cpi_total < 0
        ):
            return "entry-cpi_total-range"
        decisions = entry.get("decisions")
        if not isinstance(decisions, dict):
            return "entry-decisions-type"
        for opts in decisions.values():
            if not isinstance(opts, dict):
                return "entry-decisions-type"
            for rec in opts.values():
                if not isinstance(rec, dict):
                    return "entry-decisions-type"
                for field in _DECISION_FIELDS:
                    value = rec.get(field)
                    if (
                        not isinstance(value, int)
                        or isinstance(value, bool)
                        or value < 0
                    ):
                        return f"entry-decision-{field}-range"
        profiler = entry.get("profiler")
        if profiler is not None:
            # same validate-then-commit restore the agent itself would
            # run on this state; a scratch profiler keeps it side-effect
            # free on the daemon
            from ..config import CobraConfig
            from ..core.profiler import SystemProfiler
            from ..errors import ProfileStateError

            try:
                SystemProfiler(CobraConfig()).restore_state(profiler)
            except ProfileStateError as exc:
                return f"entry-profiler: {exc}"
        return None

    # -- decision publishing -----------------------------------------------

    def published_entry(self, key: str) -> dict | None:
        """The quorum-gated entry pushed to agents of ``key``.

        ``None`` until a quorum of independent, non-quarantined
        instances has contributed profiles.  Decisions are filtered to
        those with net-proven evidence from at least ``quorum``
        *distinct* instances — one loud instance, however many runs it
        folds in, never publishes alone.
        """
        per_instance = self.store.get(key, {})
        contributors = sorted(
            inst for inst in per_instance if inst not in self.quarantined
        )
        if len(contributors) < self.quorum:
            return None
        merged = empty_entry()
        support: dict[tuple[str, str], set[str]] = {}
        for inst in contributors:
            merged = merge_entries(merged, per_instance[inst])
            for head, opts in per_instance[inst].get("decisions", {}).items():
                for opt, rec in opts.items():
                    if rec["proven"] > rec["rolled_back"]:
                        support.setdefault((head, opt), set()).add(inst)
        decisions: dict[str, dict] = {}
        for head in sorted(merged["decisions"], key=int):
            opts = {
                opt: merged["decisions"][head][opt]
                for opt in sorted(merged["decisions"][head])
                if len(support.get((head, opt), ())) >= self.quorum
            }
            if opts:
                decisions[head] = opts
        merged["decisions"] = decisions
        return merged

    def published_count(self, key: str) -> int:
        """Quorum-published (loop, optimization) decisions for ``key``."""
        entry = self.published_entry(key)
        if entry is None:
            return 0
        return sum(len(opts) for opts in entry["decisions"].values())

    # -- durability ----------------------------------------------------------

    def _accepted_one(self) -> None:
        self.batches_accepted += 1
        if self.batches_accepted % self.snapshot_interval == 0:
            self._snapshots.write(self.batches_accepted, self._state_payload())
            self._snapshots.prune(self.snapshots_kept)
            self.snapshots_written += 1

    def _state_payload(self) -> dict:
        return {
            "format": 1,
            "quorum": self.quorum,
            "instances": sorted(self.instances),
            "seen": {
                inst: s.to_payload() for inst, s in sorted(self.seen.items())
            },
            "windows": {
                inst: {str(w): list(c) for w, c in sorted(ws.items())}
                for inst, ws in sorted(self.windows.items())
            },
            "digests": {
                key: dict(sorted(slot.items()))
                for key, slot in sorted(self.digests.items())
            },
            "store": {
                key: dict(sorted(slot.items()))
                for key, slot in sorted(self.store.items())
            },
            "quarantined": dict(sorted(self.quarantined.items())),
            "batches_accepted": self.batches_accepted,
            "journal_seq": self.journal.next_seq,
        }

    def canonical_state(self) -> bytes:
        """Canonical bytes of the convergent daemon state.

        Excludes volatile counters (duplicate/reject tallies, journal
        position): two daemons that ingested the same frames — in any
        order, with any duplication — must agree on these bytes.
        """
        payload = self._state_payload()
        del payload["journal_seq"]
        return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode()

    def _restore(self, payload: dict) -> None:
        self.instances = set(payload.get("instances", []))
        self.seen = {
            inst: SeenSet.from_payload(seqs)
            for inst, seqs in payload.get("seen", {}).items()
        }
        self.windows = {
            inst: {int(w): tuple(c) for w, c in ws.items()}
            for inst, ws in payload.get("windows", {}).items()
        }
        self.digests = {
            key: dict(slot) for key, slot in payload.get("digests", {}).items()
        }
        self.store = {
            key: dict(slot) for key, slot in payload.get("store", {}).items()
        }
        self.quarantined = dict(payload.get("quarantined", {}))
        self.batches_accepted = payload.get("batches_accepted", 0)

    def _replay(self, record: dict) -> None:
        """Re-apply one journal record (already validated at accept time)."""
        kind = record.get("t")
        if kind == "fleet-hello":
            self.instances.add(record["i"])
            self.digests.setdefault(record["key"], {})[record["i"]] = record[
                "digest"
            ]
        elif kind == "fleet-batch":
            from ..hpm.batch import WindowBatch

            batch = WindowBatch.from_payload(record["window"])
            accepted = self.windows.setdefault(record["i"], {})
            accepted[batch.window] = (
                batch.retired,
                batch.samples,
                batch.quarantined,
                batch.cpi,
            )
            self._shed_windows(accepted)
            self.seen.setdefault(record["i"], SeenSet()).add(record["n"])
            self.batches_accepted += 1
        elif kind == "fleet-profile":
            slot = self.store.setdefault(record["key"], {})
            existing = slot.get(record["i"])
            slot[record["i"]] = (
                record["entry"]
                if existing is None
                else merge_entries(existing, record["entry"])
            )
            self.digests.setdefault(record["key"], {})[record["i"]] = record[
                "digest"
            ]
            self.seen.setdefault(record["i"], SeenSet()).add(record["n"])
            self.batches_accepted += 1
        elif kind == "fleet-quarantine":
            self.quarantined.setdefault(record["i"], record["reason"])

    @classmethod
    def recover(
        cls,
        disk: Disk,
        quorum: int = 1,
        snapshot_interval: int = 8,
        snapshots_kept: int = 3,
        window_budget: int | None = None,
    ) -> "FleetDaemon":
        """Rebuild a daemon from its journal + snapshot store.

        Newest valid snapshot first (falling back past corrupt ones),
        then the journal tail is replayed; a torn final record is
        truncated away and reported in ``recovered["discarded"]`` —
        whatever frame it held was never acked, so its agent will
        retransmit and dedup keeps the replay exact.
        """
        daemon = cls(
            disk=disk,
            quorum=quorum,
            snapshot_interval=snapshot_interval,
            snapshots_kept=snapshots_kept,
            window_budget=window_budget,
        )
        load = daemon._snapshots.load_newest()
        discarded = [f"corrupt snapshot {name}" for name in load.corrupt]
        discarded.extend(f"stray snapshot temp {name}" for name in load.stray_tmp)
        replay_from = 0
        if load.payload is not None:
            daemon._restore(load.payload)
            replay_from = load.payload.get("journal_seq", 0)
        data = (
            bytes(disk.read(FLEET_JOURNAL)) if disk.exists(FLEET_JOURNAL) else b""
        )
        records, valid_len, torn = scan_journal(data)
        if valid_len < len(data):
            disk.truncate(FLEET_JOURNAL, valid_len)
        discarded.extend(torn)
        replayed = 0
        next_seq = 0
        for record in records:
            next_seq = max(next_seq, record.get("seq", -1) + 1)
            if record.get("seq", -1) < replay_from:
                continue
            daemon._replay(record)
            replayed += 1
        daemon.journal = JournalWriter(disk, next_seq=next_seq, name=FLEET_JOURNAL)
        daemon.recovered = {
            "snapshot_version": load.version,
            "replayed": replayed,
            "discarded": discarded,
        }
        return daemon
