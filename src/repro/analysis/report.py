"""Paper-style table rendering for the benchmark harness.

The benches print the same rows/series the paper's tables and figures
report: per-benchmark bars with an ``avg`` column, plus the paper's own
numbers alongside for easy shape comparison.
"""

from __future__ import annotations

from .metrics import Comparison, ExperimentSeries

__all__ = ["format_series_table", "format_table1", "format_fig3_table"]


def format_series_table(
    series_by_strategy: dict[str, ExperimentSeries],
    metric: str = "speedup",
    paper_row: dict[str, str] | None = None,
) -> str:
    """Render one figure: rows = strategies, columns = benchmarks + avg.

    ``metric`` is one of ``speedup``, ``normalized_time``,
    ``normalized_l3``, ``normalized_bus``.
    """
    first = next(iter(series_by_strategy.values()))
    names = [c.name for c in first.comparisons]
    header = ["strategy"] + names + ["avg"]
    rows = [header]
    for strategy, series in series_by_strategy.items():
        values = [getattr(c, metric) for c in series.comparisons]
        avg = sum(values) / len(values) if values else 0.0
        rows.append([strategy] + [f"{v:.3f}" for v in values] + [f"{avg:.3f}"])
    if paper_row:
        rows.append(
            ["paper"] + [paper_row.get(n, "-") for n in names] + [paper_row.get("avg", "-")]
        )
    widths = [max(len(r[i]) for r in rows) for i in range(len(header))]
    lines = []
    for i, row in enumerate(rows):
        lines.append("  ".join(cell.ljust(widths[j]) for j, cell in enumerate(row)))
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


#: Paper Table 1: static counts in the icc-compiled OpenMP NPB binaries.
PAPER_TABLE1 = {
    "bt": (140, 34, 32, 0),
    "sp": (276, 67, 22, 0),
    "lu": (184, 61, 19, 0),
    "ft": (258, 45, 9, 8),
    "mg": (419, 66, 34, 4),
    "cg": (433, 69, 29, 2),
    "ep": (17, 1, 4, 1),
    "is": (76, 19, 13, 2),
}


def format_table1(ours: dict[str, tuple[int, int, int, int]]) -> str:
    """Render Table 1 (ours vs the paper's icc numbers)."""
    header = f"{'bench':6s} {'lfetch':>12s} {'br.ctop':>12s} {'br.cloop':>12s} {'br.wtop':>12s}"
    lines = [header, "-" * len(header)]
    for name, counts in ours.items():
        paper = PAPER_TABLE1.get(name)
        cells = []
        for i in range(4):
            p = str(paper[i]) if paper else "-"
            cells.append(f"{counts[i]:>5d}/{p:>5s}")
        lines.append(f"{name:6s} " + " ".join(f"{c:>12s}" for c in cells))
    lines.append("(ours/paper; ours are structural analogues, shape not absolutes)")
    return "\n".join(lines)


def format_fig3_table(
    results: dict[tuple[str, int, str], int],
    working_sets: list[str],
    threads: list[int],
    strategies: list[str],
) -> str:
    """Render Figure 3: normalized execution time per (WS, threads).

    ``results`` maps (working set, n_threads, strategy) -> cycles.
    Normalization follows the paper: each bar is relative to the
    1-thread ``prefetch`` run of the same working set.
    """
    lines = []
    for ws in working_sets:
        base = results[(ws, 1, "prefetch")]
        lines.append(f"working set {ws} (normalized to 1-thread prefetch = 1.0)")
        header = f"  {'threads':>8s} " + " ".join(f"{s:>12s}" for s in strategies)
        lines.append(header)
        for t in threads:
            row = [f"  {t:>8d} "]
            for s in strategies:
                row.append(f"{results[(ws, t, s)] / base:>12.3f}")
            lines.append(" ".join(row))
    return "\n".join(lines)
