"""Metrics: the normalized quantities the paper's figures report.

Every figure in the evaluation section is a *ratio* against the
``prefetch`` baseline: speedup (Fig. 5), normalized L3 misses (Fig. 6),
normalized bus memory transactions (Fig. 7).  The helpers here compute
those ratios from :class:`~repro.runtime.team.RunResult` pairs and
aggregate them the way the paper does (per-benchmark bars plus an
arithmetic-mean ``avg`` bar).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..runtime.team import RunResult

__all__ = ["Comparison", "ExperimentSeries"]


@dataclass(frozen=True)
class Comparison:
    """One optimized run against its baseline."""

    name: str
    baseline: RunResult
    optimized: RunResult

    @property
    def speedup(self) -> float:
        """Baseline time / optimized time (>1 means the optimization won)."""
        if self.optimized.cycles == 0:
            return 0.0
        return self.baseline.cycles / self.optimized.cycles

    @property
    def normalized_time(self) -> float:
        """Optimized execution time normalized to the baseline (Fig. 3/5)."""
        if self.baseline.cycles == 0:
            return 0.0
        return self.optimized.cycles / self.baseline.cycles

    @property
    def normalized_l3(self) -> float:
        """Optimized L3 misses / baseline L3 misses (Fig. 6)."""
        base = self.baseline.events.l3_misses
        return self.optimized.events.l3_misses / base if base else 0.0

    @property
    def normalized_bus(self) -> float:
        """Optimized bus transactions / baseline (Fig. 7)."""
        base = self.baseline.events.bus_memory
        return self.optimized.events.bus_memory / base if base else 0.0


@dataclass
class ExperimentSeries:
    """A figure's worth of comparisons (one per benchmark)."""

    title: str
    comparisons: list[Comparison] = field(default_factory=list)

    def add(self, comparison: Comparison) -> None:
        self.comparisons.append(comparison)

    def _mean(self, values: list[float]) -> float:
        return sum(values) / len(values) if values else 0.0

    def avg_speedup(self) -> float:
        return self._mean([c.speedup for c in self.comparisons])

    def max_speedup(self) -> float:
        return max((c.speedup for c in self.comparisons), default=0.0)

    def avg_normalized_l3(self) -> float:
        return self._mean([c.normalized_l3 for c in self.comparisons])

    def avg_normalized_bus(self) -> float:
        return self._mean([c.normalized_bus for c in self.comparisons])
