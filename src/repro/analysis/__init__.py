"""Analysis: normalized metrics and paper-style report rendering."""

from .metrics import Comparison, ExperimentSeries
from .report import PAPER_TABLE1, format_fig3_table, format_series_table, format_table1

__all__ = [
    "Comparison",
    "ExperimentSeries",
    "format_series_table",
    "format_table1",
    "format_fig3_table",
    "PAPER_TABLE1",
]
