"""Aggregated telemetry batches shipped by fleet agents.

A fleet agent does not forward raw :class:`~repro.hpm.sample.Sample`
records — at 50+ instances that would be most of the wire traffic for
data the daemon immediately folds anyway.  Instead the agent's outbox
aggregates each optimizer window into one :class:`WindowBatch`: the
window ordinal, the retired-instruction watermark, the sample/quarantine
deltas the profiler absorbed, and the window CPI.  The daemon treats a
batch exactly like the profiler treats a sample: untrusted input that
must pass field-level range checks (:meth:`WindowBatch.anomaly`) before
it can touch shared state, with cross-batch ordering anomalies (window
conflicts, retired-count time travel) checked stream-side by the daemon.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["WindowBatch"]


@dataclass(frozen=True)
class WindowBatch:
    """One optimizer window's aggregated HPM telemetry."""

    #: window ordinal within the instance's run (0-based, dense)
    window: int
    #: aggregate retired instructions at the wake that closed the window
    retired: int
    #: samples the profiler ingested during the window
    samples: int
    #: samples the sanitizer quarantined during the window
    quarantined: int
    #: window CPI (0.0 = empty window, no signal)
    cpi: float

    def to_payload(self) -> dict:
        """Canonical JSON-ready payload for the wire frame."""
        return {
            "window": self.window,
            "retired": self.retired,
            "samples": self.samples,
            "quarantined": self.quarantined,
            "cpi": self.cpi,
        }

    @classmethod
    def from_payload(cls, payload: object) -> "WindowBatch":
        """Decode a wire payload; raises ``ValueError`` on damage."""
        if not isinstance(payload, dict):
            raise ValueError(f"window batch payload must be a dict, got {payload!r}")
        fields = {}
        for name, kinds in (
            ("window", int),
            ("retired", int),
            ("samples", int),
            ("quarantined", int),
            ("cpi", (int, float)),
        ):
            value = payload.get(name)
            if not isinstance(value, kinds) or isinstance(value, bool):
                raise ValueError(f"window batch field {name!r} damaged: {value!r}")
            fields[name] = value
        return cls(
            window=fields["window"],
            retired=fields["retired"],
            samples=fields["samples"],
            quarantined=fields["quarantined"],
            cpi=float(fields["cpi"]),
        )

    def anomaly(self) -> str | None:
        """Field-level sanity check; the reason this batch is garbage.

        Mirrors :meth:`repro.hpm.sample.Sample.anomaly`: a batch crossed
        a fault-injectable transport and a possibly-compromised agent,
        so the daemon treats every field as untrusted before merging.
        """
        if self.window < 0:
            return "window-range"
        if self.retired < 0:
            return "retired-range"
        if self.samples < 0:
            return "samples-range"
        if self.quarantined < 0:
            return "quarantined-range"
        if not math.isfinite(self.cpi) or self.cpi < 0.0:
            return "cpi-range"
        return None
