"""PMU event definitions (Itanium 2 naming).

Each event maps onto the simulator's raw counters: the core's retirement
counters or the CPU's :class:`~repro.memory.events.MemEvents`.  The
names follow the Itanium 2 reference manual events the paper uses
(``BUS_MEMORY``, ``BUS_RD_HIT``, ``BUS_RD_HITM``,
``BUS_RD_INVAL_ALL_HITM``; §4).
"""

from __future__ import annotations

from enum import Enum
from typing import TYPE_CHECKING

from ..errors import HpmError

if TYPE_CHECKING:  # pragma: no cover
    from ..cpu.core import Core

__all__ = ["PmuEvent", "read_event"]


class PmuEvent(Enum):
    """Monitorable performance events."""

    CPU_CYCLES = "CPU_CYCLES"
    IA64_INST_RETIRED = "IA64_INST_RETIRED"
    LOADS_RETIRED = "LOADS_RETIRED"
    STORES_RETIRED = "STORES_RETIRED"
    DATA_PREFETCHES = "DATA_PREFETCHES"
    L2_MISSES = "L2_MISSES"
    L3_MISSES = "L3_MISSES"
    L2_WRITEBACKS = "L2_WRITEBACKS"
    L3_WRITEBACKS = "L3_WRITEBACKS"
    BUS_MEMORY = "BUS_MEMORY"
    BUS_RD_HIT = "BUS_RD_HIT"
    BUS_RD_HITM = "BUS_RD_HITM"
    BUS_RD_INVAL = "BUS_RD_INVAL"
    BUS_RD_INVAL_ALL_HITM = "BUS_RD_INVAL_ALL_HITM"
    BR_TAKEN = "BR_TAKEN"


def read_event(core: "Core", event: PmuEvent) -> int:
    """Current free-running value of ``event`` on ``core``."""
    ev = core.cache.events
    if event is PmuEvent.CPU_CYCLES:
        return core.cycles
    if event is PmuEvent.IA64_INST_RETIRED:
        return core.retired
    if event is PmuEvent.LOADS_RETIRED:
        return ev.loads
    if event is PmuEvent.STORES_RETIRED:
        return ev.stores
    if event is PmuEvent.DATA_PREFETCHES:
        return ev.prefetches
    if event is PmuEvent.L2_MISSES:
        return ev.l2_misses
    if event is PmuEvent.L3_MISSES:
        return ev.l3_misses
    if event is PmuEvent.L2_WRITEBACKS:
        return ev.l2_writebacks
    if event is PmuEvent.L3_WRITEBACKS:
        return ev.writebacks
    if event is PmuEvent.BUS_MEMORY:
        return ev.bus_memory
    if event is PmuEvent.BUS_RD_HIT:
        return ev.bus_rd_hit
    if event is PmuEvent.BUS_RD_HITM:
        return ev.bus_rd_hitm
    if event is PmuEvent.BUS_RD_INVAL:
        return ev.bus_rd_inval
    if event is PmuEvent.BUS_RD_INVAL_ALL_HITM:
        return ev.bus_rd_inval_hitm
    if event is PmuEvent.BR_TAKEN:
        return core.taken_branches
    raise HpmError(f"unknown event {event!r}")  # pragma: no cover
