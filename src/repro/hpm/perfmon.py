"""perfmon-like sampling driver.

Mirrors the structure the paper describes (§3.1–3.2): the "kernel"
driver programs each CPU's PMU, arms an overflow interrupt every
``interval`` retired instructions, and on each interrupt copies a
:class:`~repro.hpm.sample.Sample` into the per-CPU Kernel Sampling
Buffer, then signals the registered listener (COBRA's monitoring
thread), which drains the buffer into its User Sampling Buffer.

The interrupt + copy cost is charged to the monitored core
(``overhead_cycles``), which is how the framework's monitoring overhead
shows up in measured execution time.
"""

from __future__ import annotations

from typing import Callable, TYPE_CHECKING

from ..errors import HpmError
from .btb import BranchTraceBuffer
from .counters import PerformanceCounters
from .dear import DataEventAddressRegister
from .events import PmuEvent
from .sample import Sample

if TYPE_CHECKING:  # pragma: no cover
    from ..cpu.core import Core

__all__ = ["PerfmonSession", "PerfmonDriver"]


class PerfmonSession:
    """Sampling session on one CPU."""

    def __init__(self, core: "Core", pid: int = 0) -> None:
        self.core = core
        self.pid = pid
        self.pmu = PerformanceCounters(core)
        self.btb = BranchTraceBuffer(core)
        self.dear = DataEventAddressRegister(core)
        self.kernel_buffer: list[Sample] = []
        self._listener: Callable[[Sample], None] | None = None
        self._index = 0
        self._active = False

    def configure(
        self,
        events: list[PmuEvent],
        interval: int,
        dear_min_latency: int,
        overhead_cycles: int = 0,
    ) -> None:
        """Program the PMU and arm the sampling interrupt."""
        if self._active:
            raise HpmError("session already active")
        if interval <= 0:
            raise HpmError("sampling interval must be positive")
        if len(events) > 4:
            raise HpmError("only four performable counters exist")
        for i, event in enumerate(events):
            self.pmu.program(i, event)
        self.dear.program(dear_min_latency)
        self.core.enable_sampling(interval, self._overflow, overhead_cycles)
        self._active = True

    def set_listener(self, listener: Callable[[Sample], None]) -> None:
        """Register the monitoring thread's signal handler."""
        self._listener = listener

    def stop(self) -> None:
        if self._active:
            self.core.disable_sampling()
            self.dear.disable()
            self._active = False

    @property
    def active(self) -> bool:
        return self._active

    def _overflow(self, core: "Core") -> None:
        miss = self.dear.consume()
        sample = Sample(
            index=self._index,
            pc=core.pc,
            pid=self.pid,
            thread_id=core.cpu_id,  # threads are 1:1 bound to CPUs
            cpu_id=core.cpu_id,
            counters=self.pmu.read_all(),
            btb=self.btb.snapshot(),
            miss_pc=miss.pc if miss else None,
            miss_latency=miss.latency if miss else None,
            miss_addr=miss.addr if miss else None,
            cycles=core.cycles,
        )
        self._index += 1
        self.kernel_buffer.append(sample)
        if self._listener is not None:
            self._listener(sample)

    def drain(self) -> list[Sample]:
        """Remove and return all buffered samples."""
        out = self.kernel_buffer
        self.kernel_buffer = []
        return out


class PerfmonDriver:
    """Driver facade: one session per CPU of a machine."""

    def __init__(self, cores: list["Core"], pid: int = 0) -> None:
        self.sessions = [PerfmonSession(core, pid) for core in cores]

    def session(self, cpu: int) -> PerfmonSession:
        if not 0 <= cpu < len(self.sessions):
            raise HpmError(f"no perfmon session for cpu {cpu}")
        return self.sessions[cpu]

    def stop_all(self) -> None:
        for session in self.sessions:
            session.stop()
