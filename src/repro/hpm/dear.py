"""Data Event Address Registers (DEAR).

The DEAR captures, for qualifying long-latency data accesses, the
instruction address, the data address, and the miss latency.  It can be
programmed to ignore events at or below a latency threshold — the paper
programs it above the 12-cycle L3-hit band so that L2 misses satisfied
by the L3 are never even captured (§4, first-level filter).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..errors import HpmError

if TYPE_CHECKING:  # pragma: no cover
    from ..cpu.core import Core

__all__ = ["DataEventAddressRegister", "DearRecord"]


class DearRecord:
    """One captured event."""

    __slots__ = ("pc", "addr", "latency")

    def __init__(self, pc: int, addr: int, latency: int) -> None:
        self.pc = pc
        self.addr = addr
        self.latency = latency

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<DearRecord pc={self.pc:#x} addr={self.addr:#x} lat={self.latency}>"


class DataEventAddressRegister:
    """Programmable latency-filtered miss capture for one core."""

    def __init__(self, core: "Core") -> None:
        self.core = core

    def program(self, min_latency: int) -> None:
        """Capture only events with latency strictly above ``min_latency``."""
        if min_latency < 0:
            raise HpmError("DEAR latency threshold must be non-negative")
        self.core.cache.dear_threshold = min_latency
        self.core.cache.dear_pending = None
        self.core.dear = None

    def disable(self) -> None:
        self.core.cache.dear_threshold = 1 << 30
        self.core.cache.dear_pending = None
        self.core.dear = None

    def read(self) -> DearRecord | None:
        """Most recent qualifying event, or None."""
        raw = self.core.dear
        if raw is None:
            return None
        return DearRecord(*raw)

    def consume(self) -> DearRecord | None:
        """Read and clear (one sample reports each event at most once)."""
        record = self.read()
        self.core.dear = None
        return record
