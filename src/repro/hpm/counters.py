"""Programmable performance counters (four per CPU, as on Itanium 2)."""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..errors import HpmError
from .events import PmuEvent, read_event

if TYPE_CHECKING:  # pragma: no cover
    from ..cpu.core import Core

__all__ = ["PerformanceCounters", "N_COUNTERS", "COUNTER_WIDTH", "COUNTER_MASK"]

N_COUNTERS = 4

#: Hardware PMD registers are fixed-width and wrap; consumers computing
#: deltas between snapshots must subtract modulo this width.
COUNTER_WIDTH = 48
COUNTER_MASK = (1 << COUNTER_WIDTH) - 1


class PerformanceCounters:
    """Four programmable counters over one core's event sources.

    Counters are virtualized on top of the simulator's free-running
    totals: programming or resetting a counter records the current total
    as its base.
    """

    def __init__(self, core: "Core") -> None:
        self.core = core
        self._events: list[PmuEvent | None] = [None] * N_COUNTERS
        self._base: list[int] = [0] * N_COUNTERS

    def program(self, index: int, event: PmuEvent) -> None:
        """Bind ``event`` to counter ``index`` and zero it."""
        if not 0 <= index < N_COUNTERS:
            raise HpmError(f"counter index {index} out of range")
        self._events[index] = event
        self._base[index] = read_event(self.core, event)

    def event_of(self, index: int) -> PmuEvent | None:
        return self._events[index]

    def read(self, index: int) -> int:
        """Current value of counter ``index`` since it was programmed."""
        event = self._events[index]
        if event is None:
            raise HpmError(f"counter {index} not programmed")
        return (read_event(self.core, event) - self._base[index]) & COUNTER_MASK

    def reset(self, index: int) -> None:
        event = self._events[index]
        if event is None:
            raise HpmError(f"counter {index} not programmed")
        self._base[index] = read_event(self.core, event)

    def read_all(self) -> tuple[int, int, int, int]:
        """Snapshot of all four counters (unprogrammed read as 0)."""
        out = []
        for i in range(N_COUNTERS):
            out.append(self.read(i) if self._events[i] is not None else 0)
        return tuple(out)  # type: ignore[return-value]
