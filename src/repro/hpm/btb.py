"""Branch Trace Buffer access.

The Itanium 2 BTB "keeps track of four address pairs from the last four
taken branches and branch targets" (paper §3.1); COBRA samples it to
rebuild hot execution paths and loop boundaries without instrumenting
the code.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from ..cpu.core import Core

__all__ = ["BranchTraceBuffer", "BTB_PAIRS"]

BTB_PAIRS = 4


class BranchTraceBuffer:
    """Read-only view of a core's last-taken-branch pairs."""

    def __init__(self, core: "Core") -> None:
        self.core = core

    def snapshot(self) -> tuple[tuple[int, int], ...]:
        """The last up-to-four (branch address, target address) pairs,
        oldest first."""
        return tuple(self.core.btb)

    def last_backward(self) -> tuple[int, int] | None:
        """Most recent backward taken branch (a loop-closing candidate)."""
        for branch, target in reversed(self.core.btb):
            if target <= branch:
                return branch, target
        return None
