"""Simulated hardware performance monitoring (Itanium 2 PMU model).

Four programmable counters, the Branch Trace Buffer, latency-filtered
Data Event Address Registers, and a perfmon-like sampling driver — the
profile sources COBRA's monitoring threads consume.
"""

from .batch import WindowBatch
from .btb import BTB_PAIRS, BranchTraceBuffer
from .counters import COUNTER_MASK, COUNTER_WIDTH, N_COUNTERS, PerformanceCounters
from .dear import DataEventAddressRegister, DearRecord
from .events import PmuEvent, read_event
from .perfmon import PerfmonDriver, PerfmonSession
from .sample import Sample

__all__ = [
    "BranchTraceBuffer",
    "BTB_PAIRS",
    "PerformanceCounters",
    "N_COUNTERS",
    "COUNTER_WIDTH",
    "COUNTER_MASK",
    "DataEventAddressRegister",
    "DearRecord",
    "PmuEvent",
    "read_event",
    "PerfmonDriver",
    "PerfmonSession",
    "Sample",
    "WindowBatch",
]
