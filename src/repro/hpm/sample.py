"""Sample records delivered by the perfmon driver.

The paper (§3.1) specifies the sample layout: "Each sample consists of a
sample index, Program Counter (PC) address, process ID, thread ID,
processor ID, four performance counters, eight BTB entries, data cache
miss instruction address, miss latency, and miss data cache line
address."  ``Sample`` carries exactly those fields (the eight BTB
entries are the four (branch, target) pairs).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..memory.address import LINE_SHIFT

__all__ = ["Sample"]


@dataclass(frozen=True)
class Sample:
    """One HPM sample from one monitored thread."""

    index: int
    pc: int
    pid: int
    thread_id: int
    cpu_id: int
    counters: tuple[int, int, int, int]
    btb: tuple[tuple[int, int], ...]
    miss_pc: int | None
    miss_latency: int | None
    miss_addr: int | None
    cycles: int

    @property
    def miss_line(self) -> int | None:
        """Data cache line address of the captured miss (paper field)."""
        if self.miss_addr is None:
            return None
        return self.miss_addr >> LINE_SHIFT

    def has_miss(self) -> bool:
        return self.miss_pc is not None
