"""Sample records delivered by the perfmon driver.

The paper (§3.1) specifies the sample layout: "Each sample consists of a
sample index, Program Counter (PC) address, process ID, thread ID,
processor ID, four performance counters, eight BTB entries, data cache
miss instruction address, miss latency, and miss data cache line
address."  ``Sample`` carries exactly those fields (the eight BTB
entries are the four (branch, target) pairs).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..memory.address import LINE_SHIFT

__all__ = ["Sample"]


@dataclass(frozen=True)
class Sample:
    """One HPM sample from one monitored thread."""

    index: int
    pc: int
    pid: int
    thread_id: int
    cpu_id: int
    counters: tuple[int, int, int, int]
    btb: tuple[tuple[int, int], ...]
    miss_pc: int | None
    miss_latency: int | None
    miss_addr: int | None
    cycles: int

    @property
    def miss_line(self) -> int | None:
        """Data cache line address of the captured miss (paper field)."""
        if self.miss_addr is None:
            return None
        return self.miss_addr >> LINE_SHIFT

    def has_miss(self) -> bool:
        return self.miss_pc is not None

    def anomaly(self, counter_mask: int) -> str | None:
        """Field-level sanity check; the reason this sample is garbage.

        Returns ``None`` for a well-formed sample.  A real perfmon
        buffer can hand the profiler torn or overwritten records (USB
        overflow, signal races), so every consumer must treat a sample
        as untrusted input: PC and BTB addresses are non-negative,
        counters fit the PMD width (``counter_mask``), and a captured
        miss has a non-negative latency.  Ordering anomalies (stale
        index, time travel) need cross-sample state and are checked by
        :class:`~repro.core.profiler.SystemProfiler`.
        """
        if self.pc < 0:
            return "pc-range"
        if self.cycles < 0:
            return "cycles-range"
        if len(self.counters) != 4 or any(
            not 0 <= c <= counter_mask for c in self.counters
        ):
            return "counter-range"
        for branch, target in self.btb:
            if branch < 0 or target < 0:
                return "btb-range"
        if self.miss_latency is not None and self.miss_latency < 0:
            return "latency-range"
        return None
